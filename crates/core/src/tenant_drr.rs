//! Cross-tenant weighted deficit-round-robin packet scheduling
//! (DESIGN.md §10).
//!
//! The per-shard packet scheduler is where a noisy neighbor's backlog
//! would otherwise monopolize a drain burst: a FIFO drains in arrival
//! order, so a tenant that emitted 10 000 messages ahead of a
//! well-behaved tenant's single ping delays that ping by the whole
//! backlog.  [`TenantDrr`] gives every registered tenant its own lane
//! and serves lanes deficit-round-robin — each lane earns `weight`
//! credits per visit and spends one per message — so a shard's drain
//! burst is divided among backlogged tenants by weight instead of by
//! arrival order.  Within a lane, higher traffic classes always leave
//! first (QoS-weighted: a tenant's time-critical messages precede its
//! own bulk traffic).
//!
//! Unregistered tenants (and the anonymous default tenant) share lane
//! 0 at weight 1, mirroring the quota ledger's catch-all entry.

use std::collections::VecDeque;
use std::time::Instant;

use insane_memory::{TenantId, DEFAULT_TENANT};
use insane_tsn::{Scheduler, TrafficClass, CLASS_COUNT};

/// Items schedulable by [`TenantDrr`] expose their owning tenant.
pub trait Tenanted {
    /// The tenant that emitted this item.
    fn tenant(&self) -> TenantId;
}

/// One tenant's queues: one FIFO per traffic class plus DRR state.
#[derive(Debug)]
struct Lane<T> {
    tenant: TenantId,
    weight: u64,
    /// Unspent credits from earlier visits (reset when the lane drains).
    deficit: u64,
    queues: [VecDeque<T>; CLASS_COUNT],
    len: usize,
}

impl<T> Lane<T> {
    fn new(tenant: TenantId, weight: u32) -> Self {
        Self {
            tenant,
            weight: u64::from(weight.max(1)),
            deficit: 0,
            queues: std::array::from_fn(|_| VecDeque::new()),
            len: 0,
        }
    }

    /// Pops the highest-class queued item.
    fn pop_best(&mut self) -> Option<T> {
        for queue in self.queues.iter_mut().rev() {
            if let Some(item) = queue.pop_front() {
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

/// Weighted deficit-round-robin scheduler across tenants, QoS-ordered
/// within each tenant.  Implements [`Scheduler`] so the runtime can
/// install it per shard in place of the FIFO strategy.
#[derive(Debug)]
pub struct TenantDrr<T> {
    lanes: Vec<Lane<T>>,
    /// Next lane to visit (round-robin position, survives across calls).
    cursor: usize,
    len: usize,
}

impl<T: Tenanted> TenantDrr<T> {
    /// Builds a scheduler with one lane per `(tenant, weight)` pair plus
    /// the anonymous lane 0.  Duplicate registrations and the default
    /// tenant are ignored; weights are clamped to at least 1.
    pub fn new(weights: &[(TenantId, u32)]) -> Self {
        let mut lanes = Vec::with_capacity(weights.len() + 1);
        lanes.push(Lane::new(DEFAULT_TENANT, 1));
        for &(tenant, weight) in weights {
            if tenant != DEFAULT_TENANT && !lanes.iter().any(|l: &Lane<T>| l.tenant == tenant) {
                lanes.push(Lane::new(tenant, weight));
            }
        }
        Self {
            lanes,
            cursor: 0,
            len: 0,
        }
    }

    fn lane_index(&self, tenant: TenantId) -> usize {
        self.lanes
            .iter()
            .skip(1)
            .position(|l| l.tenant == tenant)
            .map_or(0, |i| i + 1)
    }
}

impl<T: Tenanted> Scheduler<T> for TenantDrr<T> {
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-alloc) -- lane deques are bounded by the admission quota; they reach a watermark and reuse capacity
    fn enqueue(&mut self, item: T, class: TrafficClass, _now: Instant) {
        let idx = self.lane_index(item.tenant());
        if let Some(lane) = self.lanes.get_mut(idx) {
            let class_idx = (class.value() as usize).min(CLASS_COUNT - 1);
            if let Some(queue) = lane.queues.get_mut(class_idx) {
                queue.push_back(item);
                lane.len += 1;
                self.len += 1;
            }
        }
    }

    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- nlanes >= 1 always (lane 0 is the catch-all built by the constructor)
    fn dequeue_ready(&mut self, out: &mut Vec<T>, max: usize, _now: Instant) -> usize {
        let mut emitted = 0;
        let nlanes = self.lanes.len();
        // Every full rotation over a non-empty scheduler emits at least
        // one item (a visited non-empty lane earns `weight >= 1` credit
        // and spends one per message), so the loop terminates.
        while emitted < max && self.len > 0 {
            let i = self.cursor % nlanes;
            self.cursor = (self.cursor + 1) % nlanes;
            let Some(lane) = self.lanes.get_mut(i) else {
                break;
            };
            if lane.len == 0 {
                // An idle lane banks no credit: deficits only accumulate
                // while a backlog is actually waiting.
                lane.deficit = 0;
                continue;
            }
            lane.deficit = lane.deficit.saturating_add(lane.weight);
            while lane.deficit > 0 && emitted < max {
                match lane.pop_best() {
                    Some(item) => {
                        lane.deficit -= 1;
                        self.len -= 1;
                        out.push(item);
                        emitted += 1;
                    }
                    None => break,
                }
            }
            if lane.len == 0 {
                lane.deficit = 0;
            }
        }
        emitted
    }

    fn len(&self) -> usize {
        self.len
    }

    fn next_release(&self, now: Instant) -> Option<Instant> {
        (self.len > 0).then_some(now)
    }

    fn drain_all(&mut self, out: &mut Vec<T>) -> usize {
        let mut drained = 0;
        for lane in &mut self.lanes {
            while let Some(item) = lane.pop_best() {
                out.push(item);
                drained += 1;
            }
            lane.deficit = 0;
        }
        self.len -= drained;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Item(TenantId, u32);

    impl Tenanted for Item {
        fn tenant(&self) -> TenantId {
            self.0
        }
    }

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn backlogged_tenants_share_a_burst_by_weight() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 1), (2, 3)]);
        for n in 0..8 {
            drr.enqueue(Item(1, n), TrafficClass::BEST_EFFORT, now());
            drr.enqueue(Item(2, n), TrafficClass::BEST_EFFORT, now());
        }
        let mut out = Vec::new();
        assert_eq!(drr.dequeue_ready(&mut out, 8, now()), 8);
        let t2 = out.iter().filter(|i| i.0 == 2).count();
        // Tenant 2 (weight 3) gets ~3x tenant 1's share of the burst.
        assert_eq!(t2, 6);
        assert_eq!(out.iter().filter(|i| i.0 == 1).count(), 2);
        assert_eq!(drr.len(), 8);
    }

    #[test]
    fn a_saturating_tenant_cannot_monopolize_the_drain() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 1), (2, 1)]);
        // Tenant 2 enqueues a large backlog *before* tenant 1's single
        // message arrives — a FIFO would drain all 100 first.
        for n in 0..100 {
            drr.enqueue(Item(2, n), TrafficClass::BEST_EFFORT, now());
        }
        drr.enqueue(Item(1, 0), TrafficClass::BEST_EFFORT, now());
        let mut out = Vec::new();
        drr.dequeue_ready(&mut out, 4, now());
        assert!(
            out.contains(&Item(1, 0)),
            "the well-behaved tenant's message leaves in the first burst"
        );
    }

    #[test]
    fn classes_leave_high_to_low_within_a_lane() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 4)]);
        drr.enqueue(Item(1, 0), TrafficClass::BEST_EFFORT, now());
        drr.enqueue(Item(1, 7), TrafficClass::TIME_CRITICAL, now());
        drr.enqueue(Item(1, 3), TrafficClass::new(3).unwrap(), now());
        let mut out = Vec::new();
        drr.dequeue_ready(&mut out, 3, now());
        assert_eq!(out, vec![Item(1, 7), Item(1, 3), Item(1, 0)]);
    }

    #[test]
    fn unregistered_tenants_share_the_anonymous_lane() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 1)]);
        drr.enqueue(Item(9, 0), TrafficClass::BEST_EFFORT, now());
        drr.enqueue(Item(0, 1), TrafficClass::BEST_EFFORT, now());
        let mut out = Vec::new();
        assert_eq!(drr.dequeue_ready(&mut out, 8, now()), 2);
        assert!(drr.is_empty());
    }

    #[test]
    fn drain_all_empties_every_lane() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 1), (2, 2)]);
        for n in 0..5 {
            drr.enqueue(Item(1, n), TrafficClass::BEST_EFFORT, now());
            drr.enqueue(Item(2, n), TrafficClass::TIME_CRITICAL, now());
        }
        let mut out = Vec::new();
        assert_eq!(drr.drain_all(&mut out), 10);
        assert_eq!(drr.len(), 0);
        assert!(drr.next_release(now()).is_none());
        assert_eq!(drr.dequeue_ready(&mut out, 8, now()), 0);
    }

    #[test]
    fn deficit_does_not_bank_while_idle() {
        let mut drr: TenantDrr<Item> = TenantDrr::new(&[(1, 1), (2, 1)]);
        // Many empty visits to tenant 2's lane while tenant 1 drains.
        for n in 0..6 {
            drr.enqueue(Item(1, n), TrafficClass::BEST_EFFORT, now());
        }
        let mut out = Vec::new();
        drr.dequeue_ready(&mut out, 6, now());
        // Tenant 2 now enqueues; it gets its weight's share, not a
        // windfall from the idle rounds.
        for n in 0..4 {
            drr.enqueue(Item(1, 10 + n), TrafficClass::BEST_EFFORT, now());
            drr.enqueue(Item(2, 10 + n), TrafficClass::BEST_EFFORT, now());
        }
        out.clear();
        drr.dequeue_ready(&mut out, 4, now());
        assert_eq!(out.iter().filter(|i| i.0 == 2).count(), 2);
    }
}
