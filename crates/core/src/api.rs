//! The INSANE client library: the technology-agnostic API of Fig. 2.
//!
//! | paper primitive        | here |
//! |---|---|
//! | `init_session`         | [`Session::connect`] |
//! | `close_session`        | [`Session::close`] (or drop) |
//! | `create_stream`        | [`Session::create_stream`] |
//! | `close_stream`         | [`Stream::close`] (or drop) |
//! | `create_source`        | [`Stream::create_source`] |
//! | `get_buffer`           | [`Source::get_buffer`] |
//! | `emit_data`            | [`Source::emit`] |
//! | `check_emit_outcome`   | [`Source::emit_outcome`] |
//! | `create_sink` (+cb)    | [`Stream::create_sink`] / [`Stream::create_sink_with_callback`] |
//! | `data_available`       | [`Sink::data_available`] |
//! | `consume_data`         | [`Sink::consume`] |
//! | `release_buffer`       | dropping the [`IncomingMessage`] |

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use insane_fabric::Technology;
use insane_memory::SlotGuard;
use insane_queues::MpmcQueue;
use parking_lot::{Condvar, Mutex};

use crate::qos::QosPolicy;
use crate::runtime::internals::{
    Delivery, OutcomeBoard, PayloadStore, SinkShared, StreamShared, TxRequest,
};
use crate::runtime::Runtime;
use crate::stats::{LatencyBreakdown, MessageMeta};
use crate::{epoch_ns, ChannelId, InsaneError, PAYLOAD_OFFSET};

/// How [`Sink::consume`] waits for data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumeMode {
    /// Block until a message arrives.
    Blocking,
    /// Return [`InsaneError::WouldBlock`] immediately when none is ready.
    NonBlocking,
}

/// Handle returned by [`Source::emit`] for later outcome retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitToken {
    seq: u64,
}

impl EmitToken {
    /// The per-stream sequence number this emit was assigned.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Outcome of an emit operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitOutcome {
    /// Still queued in the middleware.
    Pending,
    /// Handed to a datapath (or delivered locally).
    Completed,
    /// Could not be sent (framing failure, stale token, device error).
    Failed,
}

/// Session construction parameters (multi-tenant deployments).
///
/// The default configuration attaches as the anonymous tenant
/// ([`crate::DEFAULT_TENANT`]): no quota, no rate limit, the shared
/// fair-share lane — exactly the single-tenant behavior of
/// [`Session::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// The tenant every stream of this session emits as.  Register the
    /// tenant on the runtime ([`crate::TenantSpec`]) to give it slot
    /// quotas, admission rates, and a scheduler weight; unregistered
    /// ids pool with the anonymous tenant.
    pub tenant: crate::TenantId,
}

impl SessionConfig {
    /// A configuration attaching as `tenant`.
    pub fn for_tenant(tenant: crate::TenantId) -> Self {
        Self { tenant }
    }
}

/// An application session with the local runtime (`init_session`).
#[derive(Debug)]
pub struct Session {
    runtime: Runtime,
    id: u64,
    tenant: crate::TenantId,
    streams: Mutex<Vec<Arc<StreamShared>>>,
    closed: AtomicBool,
}

impl Session {
    /// Connects to a runtime — the in-process analogue of mapping the
    /// runtime's shared memory and queues into the application.
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] when the runtime has shut down.
    pub fn connect(runtime: &Runtime) -> Result<Session, InsaneError> {
        Self::connect_with(runtime, SessionConfig::default())
    }

    /// As [`Session::connect`], attaching under an explicit
    /// [`SessionConfig`] — notably the tenant whose quotas, admission
    /// budget, and fair-share lane every stream of this session uses.
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] when the runtime has shut down.
    pub fn connect_with(runtime: &Runtime, config: SessionConfig) -> Result<Session, InsaneError> {
        if runtime.inner().is_stopped() {
            return Err(InsaneError::Closed);
        }
        Ok(Session {
            runtime: runtime.clone(),
            id: runtime.inner().next_id(),
            tenant: config.tenant,
            streams: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        })
    }

    /// Session identifier (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this session attached as.
    pub fn tenant(&self) -> crate::TenantId {
        self.tenant
    }

    /// Opens a stream with the given QoS policy; the runtime maps it to a
    /// technology *now*, against what this host offers (§5.2).
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] when the session or runtime is closed.
    pub fn create_stream(&self, qos: QosPolicy) -> Result<Stream, InsaneError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(InsaneError::Closed);
        }
        let shared = self.runtime.inner().create_stream(qos, self.tenant)?;
        self.streams.lock().push(Arc::clone(&shared));
        Ok(Stream {
            runtime: self.runtime.clone(),
            shared,
        })
    }

    /// Closes the session and every stream it opened (`close_session`).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for stream in self.streams.lock().drain(..) {
            stream.closed.store(true, Ordering::Release);
        }
        self.runtime.inner().streams.prune_closed();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

/// A stream: the carrier of QoS for its channels (§5.1).
#[derive(Debug)]
pub struct Stream {
    runtime: Runtime,
    shared: Arc<StreamShared>,
}

impl Stream {
    /// The QoS policy the stream was created with.
    pub fn qos(&self) -> QosPolicy {
        self.shared.qos
    }

    /// The technology this stream was mapped to.
    pub fn technology(&self) -> Technology {
        self.shared.mapped.technology
    }

    /// Whether the mapping fell back to kernel networking because the
    /// requested acceleration was unavailable (§5.2's warning).
    pub fn is_fallback(&self) -> bool {
        self.shared.mapped.fallback
    }

    /// Creates a producer endpoint on `channel`.
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] on a closed stream.
    pub fn create_source(&self, channel: ChannelId) -> Result<Source, InsaneError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(InsaneError::Closed);
        }
        let max_payload = self
            .runtime
            .inner()
            .plugin_for(self.shared.mapped.technology)?
            .max_payload()
            .min(self.runtime.inner().pools().max_slot_size() - PAYLOAD_OFFSET);
        Ok(Source {
            runtime: self.runtime.clone(),
            stream: Arc::clone(&self.shared),
            channel: channel.0,
            outcome: Arc::new(OutcomeBoard::default()),
            max_payload,
        })
    }

    /// Creates a consumer endpoint on `channel` for explicit
    /// [`Sink::consume`] calls.
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] on a closed stream.
    pub fn create_sink(&self, channel: ChannelId) -> Result<Sink, InsaneError> {
        self.build_sink(channel, None)
    }

    /// Creates a consumer endpoint whose `callback` runs on the runtime's
    /// polling thread for every message (the registered-callback receive
    /// mode of §5.1).
    ///
    /// # Errors
    ///
    /// [`InsaneError::Closed`] on a closed stream.
    pub fn create_sink_with_callback<F>(
        &self,
        channel: ChannelId,
        callback: F,
    ) -> Result<Sink, InsaneError>
    where
        F: Fn(IncomingMessage) + Send + Sync + 'static,
    {
        self.build_sink(channel, Some(Box::new(callback)))
    }

    fn build_sink(
        &self,
        channel: ChannelId,
        callback: Option<crate::runtime::internals::SinkCallback>,
    ) -> Result<Sink, InsaneError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(InsaneError::Closed);
        }
        let inner = self.runtime.inner();
        let has_callback = callback.is_some();
        let shared = Arc::new(SinkShared {
            id: inner.next_id(),
            channel: channel.0,
            queue: MpmcQueue::new(inner.config().sink_queue_depth),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            callback,
            closed: AtomicBool::new(false),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            telemetry: inner.telemetry_stream(
                channel.0,
                self.shared.qos.time_sensitivity.traffic_class(),
                self.shared.tenant,
            ),
        });
        inner.register_sink(Arc::clone(&shared));
        Ok(Sink {
            runtime: self.runtime.clone(),
            shared,
            has_callback,
        })
    }

    /// Closes the stream (`close_stream`); sources and sinks created from
    /// it keep working on already-delivered data but no new emits flow.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.runtime.inner().streams.prune_closed();
    }
}

/// A zero-copy outgoing message buffer lent by the runtime
/// (`get_buffer`).  Deref targets the payload region; the headroom for
/// protocol headers is reserved and invisible.
#[derive(Debug)]
pub struct MessageBuffer {
    guard: SlotGuard,
    payload_len: usize,
}

impl MessageBuffer {
    /// Usable payload length.
    pub fn len(&self) -> usize {
        self.payload_len
    }

    /// Whether the payload region is empty.
    pub fn is_empty(&self) -> bool {
        self.payload_len == 0
    }
}

impl core::ops::Deref for MessageBuffer {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.guard[PAYLOAD_OFFSET..PAYLOAD_OFFSET + self.payload_len]
    }
}

impl core::ops::DerefMut for MessageBuffer {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard[PAYLOAD_OFFSET..PAYLOAD_OFFSET + self.payload_len]
    }
}

/// A producer endpoint (`create_source`).
#[derive(Debug)]
pub struct Source {
    runtime: Runtime,
    stream: Arc<StreamShared>,
    channel: u32,
    outcome: Arc<OutcomeBoard>,
    max_payload: usize,
}

impl Source {
    /// The channel this source produces on.
    pub fn channel(&self) -> ChannelId {
        ChannelId(self.channel)
    }

    /// Largest payload one emit may carry on this stream's datapath.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Borrows a zero-copy buffer for a message of `len` bytes
    /// (`get_buffer`).
    ///
    /// In a multi-tenant runtime this is where isolation is enforced,
    /// before the application writes a single payload byte: the
    /// session's tenant is charged one admission token and the slot is
    /// lent against its quota.
    ///
    /// # Errors
    ///
    /// * [`InsaneError::PayloadTooLarge`] beyond the datapath's MTU.
    /// * [`InsaneError::AdmissionRejected`] / [`InsaneError::Shed`] /
    ///   [`InsaneError::Backpressure`] when the tenant outran its
    ///   admission rate (policy-dependent; see
    ///   [`crate::OverloadPolicy`]).
    /// * [`InsaneError::Memory`]\([`MemoryError::QuotaExceeded`]\) when
    ///   the tenant holds its full slot quota.
    /// * [`InsaneError::Memory`]\([`MemoryError::PoolExhausted`]\) when
    ///   the pools are exhausted (back-pressure: release consumed
    ///   buffers or retry).
    ///
    /// [`MemoryError::QuotaExceeded`]: crate::MemoryError::QuotaExceeded
    /// [`MemoryError::PoolExhausted`]: crate::MemoryError::PoolExhausted
    // insane-lint: hot-path-root
    pub fn get_buffer(&self, len: usize) -> Result<MessageBuffer, InsaneError> {
        if len > self.max_payload {
            return Err(InsaneError::PayloadTooLarge {
                len,
                max: self.max_payload,
            });
        }
        let inner = self.runtime.inner();
        let tenant = self.stream.tenant;
        inner.admission().admit(
            tenant,
            self.stream.qos.time_sensitivity.traffic_class(),
            epoch_ns(),
        )?;
        let guard = inner.pools().lend(tenant, PAYLOAD_OFFSET + len)?;
        Ok(MessageBuffer {
            guard,
            payload_len: len,
        })
    }

    /// Emits a written buffer (`emit_data`).  The buffer must not be
    /// touched afterwards — there is no after-write protection, exactly
    /// as the paper specifies (§5.1); the type system enforces it here by
    /// consuming the buffer.
    ///
    /// # Errors
    ///
    /// * [`InsaneError::Closed`] on a closed stream.
    /// * [`InsaneError::Backpressure`] when the TX queue is full (the
    ///   buffer is released; re-acquire and retry).
    pub fn emit(&self, buffer: MessageBuffer) -> Result<EmitToken, InsaneError> {
        self.emit_internal(buffer, None)
    }

    /// Emits one fragment of a larger application-level message:
    /// `index`/`count` position it, `total_len` is the whole message's
    /// size, and `message_id` identifies the message — it becomes the
    /// wire sequence of every fragment, which is the consumer's
    /// reassembly key.  The Lunar streaming framework builds on this
    /// (§7.2).
    ///
    /// # Errors
    ///
    /// As [`Source::emit`].
    pub fn emit_fragment(
        &self,
        buffer: MessageBuffer,
        index: u16,
        count: u16,
        total_len: u32,
        message_id: u64,
    ) -> Result<EmitToken, InsaneError> {
        self.emit_internal(buffer, Some((index, count, total_len, message_id)))
    }

    // insane-lint: hot-path-root
    fn emit_internal(
        &self,
        buffer: MessageBuffer,
        frag: Option<(u16, u16, u32, u64)>,
    ) -> Result<EmitToken, InsaneError> {
        if self.stream.closed.load(Ordering::Acquire) || self.runtime.inner().is_stopped() {
            return Err(InsaneError::Closed);
        }
        let seq = self.stream.next_seq();
        self.outcome.emitted.fetch_add(1, Ordering::Relaxed);
        let class = self.stream.qos.time_sensitivity.traffic_class();
        let request = TxRequest {
            token: buffer.guard.into_token(),
            payload_len: buffer.payload_len,
            channel: self.channel,
            tenant: self.stream.tenant,
            class,
            seq,
            emit_ns: epoch_ns(),
            frag,
            outcome: Arc::clone(&self.outcome),
        };
        // insane-lint: allow(hot-path-alloc) -- SPSC ring push is fixed-capacity and never allocates
        match self.stream.tx.push(request) {
            Ok(()) => Ok(EmitToken { seq }),
            Err(rejected) => {
                // Back-pressure: hand the slot back, then let the
                // overload policy decide what the caller hears — a
                // retryable Backpressure, or a terminal Shed for
                // best-effort traffic under ShedLowest.
                let inner = self.runtime.inner();
                let _ = inner.pools().release(rejected.token);
                Err(inner.admission().on_tx_full(self.stream.tenant, class))
            }
        }
    }

    /// Retrieves the outcome of a previous emit (`check_emit_outcome`).
    pub fn emit_outcome(&self, token: EmitToken) -> EmitOutcome {
        self.outcome.outcome_of(token.seq)
    }

    /// Total messages emitted through this source.
    pub fn emitted(&self) -> u64 {
        self.outcome.emitted.load(Ordering::Relaxed)
    }
}

/// Per-sink delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Messages delivered to this sink.
    pub received: u64,
    /// Messages dropped because the sink queue was full.
    pub dropped: u64,
}

/// A consumer endpoint (`create_sink`).
#[derive(Debug)]
pub struct Sink {
    runtime: Runtime,
    shared: Arc<SinkShared>,
    has_callback: bool,
}

impl Sink {
    /// The channel this sink consumes.
    pub fn channel(&self) -> ChannelId {
        ChannelId(self.shared.channel)
    }

    /// Whether a message is ready (`data_available`).
    pub fn data_available(&self) -> bool {
        !self.shared.queue.is_empty()
    }

    /// Delivery statistics.
    pub fn stats(&self) -> SinkStats {
        SinkStats {
            received: self.shared.received.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }

    /// Consumes the next message (`consume_data`).  The returned
    /// [`IncomingMessage`] borrows runtime memory; dropping it releases
    /// the buffer (`release_buffer`).
    ///
    /// # Errors
    ///
    /// * [`InsaneError::CallbackSink`] on a callback sink.
    /// * [`InsaneError::WouldBlock`] in non-blocking mode with no data.
    /// * [`InsaneError::RuntimeNotStarted`] for a blocking consume on a
    ///   manually-driven runtime (it would deadlock).
    /// * [`InsaneError::Closed`] when the sink closes mid-wait.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-block) -- waiting is the caller's opt-in (ConsumeMode::Blocking); the non-blocking path returns before any lock
    pub fn consume(&self, mode: ConsumeMode) -> Result<IncomingMessage, InsaneError> {
        if self.has_callback {
            return Err(InsaneError::CallbackSink);
        }
        if let Some(delivery) = self.shared.queue.pop() {
            return Ok(incoming_from_delivery(delivery, &self.shared.telemetry));
        }
        match mode {
            ConsumeMode::NonBlocking => Err(InsaneError::WouldBlock),
            ConsumeMode::Blocking => {
                if !self.runtime.inner().is_started() {
                    return Err(InsaneError::RuntimeNotStarted);
                }
                loop {
                    if let Some(delivery) = self.shared.queue.pop() {
                        return Ok(incoming_from_delivery(delivery, &self.shared.telemetry));
                    }
                    if self.shared.closed.load(Ordering::Acquire)
                        || self.runtime.inner().is_stopped()
                    {
                        return Err(InsaneError::Closed);
                    }
                    let mut guard = self.shared.wake_lock.lock();
                    // Recheck under the lock to avoid a lost wakeup.
                    if !self.shared.queue.is_empty() {
                        continue;
                    }
                    self.shared
                        .wake
                        .wait_for(&mut guard, Duration::from_millis(1));
                }
            }
        }
    }

    /// Closes the sink and withdraws its subscription.
    pub fn close(&self) {
        self.shared.close();
        self.runtime
            .inner()
            .unregister_sink(self.shared.id, self.shared.channel);
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.close();
    }
}

/// A received message borrowing runtime memory (zero-copy receive).
///
/// Deref yields the payload bytes; [`IncomingMessage::meta`] exposes the
/// channel/sequence/fragment metadata; [`IncomingMessage::breakdown`]
/// reports the Fig. 6 latency components.  Dropping the message releases
/// the borrowed buffer (`release_buffer`).
#[derive(Debug)]
pub struct IncomingMessage {
    store: PayloadStore,
    offset: usize,
    len: usize,
    meta: MessageMeta,
    consumed_ns: u64,
}

pub(crate) fn incoming_from_delivery(
    delivery: Arc<Delivery>,
    telemetry: &crate::telemetry::SinkTel,
) -> IncomingMessage {
    // Fast path: the only recipient takes the descriptor without clones.
    let msg = match Arc::try_unwrap(delivery) {
        Ok(delivery) => IncomingMessage {
            store: delivery.store,
            offset: delivery.offset,
            len: delivery.len,
            meta: delivery.meta,
            consumed_ns: epoch_ns(),
        },
        Err(shared) => IncomingMessage {
            store: shared.store.clone(),
            offset: shared.offset,
            len: shared.len,
            meta: shared.meta,
            consumed_ns: epoch_ns(),
        },
    };
    telemetry.observe(&msg.meta, msg.consumed_ns);
    msg
}

impl IncomingMessage {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Message metadata (channel, seq, fragmentation, timestamps).
    pub fn meta(&self) -> &MessageMeta {
        &self.meta
    }

    /// One-way latency breakdown for this message (Fig. 6 components).
    pub fn breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown::from_meta(&self.meta, self.consumed_ns)
    }

    /// Explicit release (equivalent to drop; mirrors `release_buffer`).
    pub fn release(self) {}
}

impl core::ops::Deref for IncomingMessage {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.store.bytes()[self.offset..self.offset + self.len]
    }
}
