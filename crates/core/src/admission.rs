//! Token-bucket admission control: per-tenant rate limiting with an
//! overload policy deciding who is refused when a tenant outruns its
//! budget (DESIGN.md §10).
//!
//! Placement: the bucket is charged once per message at buffer-lend
//! time ([`crate::Source::get_buffer`]), before the application invests
//! any work in the payload.  TX-queue overflow additionally consults
//! the policy ([`AdmissionController::on_tx_full`]) so a saturating
//! tenant's best-effort traffic is shed instead of turning into
//! indiscriminate backpressure.
//!
//! The hot path is allocation-free and panic-free: a linear scan over
//! a small fixed entry table, then CAS loops on two atomics.  Tokens
//! are stored in millitokens so sub-message refill amounts survive
//! integer math at low configured rates.

use std::sync::atomic::{AtomicU64, Ordering};

use insane_memory::TenantId;
use insane_tsn::TrafficClass;

use crate::InsaneError;

/// Millitokens charged per admitted message.
const TOKEN: u64 = 1_000;

/// Percentage of the bucket reserved for time-sensitive classes under
/// the shed/backpressure policies: a tenant's best-effort traffic
/// cannot spend the last quarter of the bucket, so its time-sensitive
/// messages keep a budget while the bulk traffic is being refused.
const PROTECT_RESERVE_PCT: u64 = 25;

/// Sustained-rate and burst limits of one tenant's token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRate {
    /// Sustained admission rate, messages per second.
    pub per_sec: u64,
    /// Bucket capacity: messages admitted back-to-back after idle.
    pub burst: u64,
}

impl TenantRate {
    /// A rate limit of `per_sec` messages per second, with bursts of up
    /// to `burst` messages after idle periods.  Zero values are clamped
    /// to 1 (a zero rate would silently admit nothing forever).
    pub fn new(per_sec: u64, burst: u64) -> Self {
        Self {
            per_sec: per_sec.max(1),
            burst: burst.max(1),
        }
    }
}

/// What happens when a tenant's admission bucket runs dry, or its TX
/// queue overflows while the runtime is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Refuse with [`InsaneError::AdmissionRejected`] regardless of
    /// traffic class — the strictest accounting: every message beyond
    /// the budget is an error the tenant sees.
    #[default]
    Reject,
    /// Shed lowest-criticality first: best-effort messages are refused
    /// with [`InsaneError::Shed`] once the bucket drops below its
    /// protected reserve, while time-sensitive classes may spend the
    /// bucket to empty.  Only a fully empty bucket rejects
    /// time-sensitive traffic.
    ShedLowest,
    /// Backpressure best-effort: like [`OverloadPolicy::ShedLowest`],
    /// but refused best-effort messages get the retryable
    /// [`InsaneError::Backpressure`] instead of a terminal shed — the
    /// tenant's bulk traffic slows down rather than losing messages,
    /// and time-sensitive classes keep their budgets.
    Backpressure,
}

/// Point-in-time admission counters of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionUsage {
    /// The tenant (0 = the anonymous default tenant).
    pub tenant: TenantId,
    /// Messages admitted through the bucket.
    pub admitted: u64,
    /// Messages refused terminally ([`InsaneError::AdmissionRejected`]).
    pub rejected: u64,
    /// Best-effort messages shed under [`OverloadPolicy::ShedLowest`].
    pub shed: u64,
    /// Best-effort messages backpressured under
    /// [`OverloadPolicy::Backpressure`] (retryable refusals).
    pub throttled: u64,
}

/// One tenant's bucket and counters.
#[derive(Debug)]
struct Entry {
    tenant: TenantId,
    rate: Option<TenantRate>,
    /// Current bucket level, millitokens.
    tokens_milli: AtomicU64,
    /// Epoch timestamp of the last refill claim.
    last_refill_ns: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    throttled: AtomicU64,
}

impl Entry {
    fn new(tenant: TenantId, rate: Option<TenantRate>) -> Self {
        // Buckets start full so a tenant's first burst after startup is
        // admitted; the first refill claim anchors the clock.
        let initial = rate.map_or(0, |r| r.burst.saturating_mul(TOKEN));
        Self {
            tenant,
            rate,
            tokens_milli: AtomicU64::new(initial),
            last_refill_ns: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }
}

/// Per-runtime admission controller: one token bucket per registered
/// tenant, shared by every stream the tenant opens.  Unregistered
/// tenants (and the anonymous default tenant) pool on entry 0, which
/// has no rate limit — admission control is opt-in per tenant, exactly
/// like the slot-quota ledger.
#[derive(Debug)]
pub struct AdmissionController {
    entries: Vec<Entry>,
    policy: OverloadPolicy,
}

impl AdmissionController {
    /// Builds a controller for the given `(tenant, rate)` registrations
    /// under `policy`.  A `None` rate registers the tenant without a
    /// bucket (counted, never refused).
    pub(crate) fn new(rates: &[(TenantId, Option<TenantRate>)], policy: OverloadPolicy) -> Self {
        let mut entries = Vec::with_capacity(rates.len() + 1);
        // Entry 0: the anonymous catch-all (unlimited).
        entries.push(Entry::new(insane_memory::DEFAULT_TENANT, None));
        for &(tenant, rate) in rates {
            if tenant != insane_memory::DEFAULT_TENANT
                && !entries.iter().any(|e| e.tenant == tenant)
            {
                entries.push(Entry::new(tenant, rate));
            }
        }
        Self { entries, policy }
    }

    /// The configured overload policy.
    pub fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    fn entry_index(&self, tenant: TenantId) -> usize {
        self.entries
            .iter()
            .skip(1)
            .position(|e| e.tenant == tenant)
            .map_or(0, |i| i + 1)
    }

    /// Refills `entry`'s bucket for the time elapsed since the last
    /// claim.  Elapsed time is only claimed when it converts to at
    /// least one millitoken, so frequent polls at low rates never
    /// starve the bucket by rounding every refill down to zero.
    fn refill(entry: &Entry, rate: TenantRate, now_ns: u64) {
        let last = entry.last_refill_ns.load(Ordering::Relaxed);
        if now_ns <= last {
            return;
        }
        let elapsed = now_ns - last;
        let add = ((u128::from(elapsed) * u128::from(rate.per_sec) * u128::from(TOKEN))
            / 1_000_000_000) as u64;
        if add == 0 {
            return;
        }
        if entry
            .last_refill_ns
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            // Another thread claimed this window; its refill covers it.
            return;
        }
        let cap = rate.burst.saturating_mul(TOKEN);
        let mut cur = entry.tokens_milli.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(add).min(cap);
            match entry.tokens_milli.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }

    /// Charges one message against `tenant`'s bucket.  `now_ns` is the
    /// caller's epoch timestamp (passed in so tests are deterministic).
    ///
    /// # Errors
    ///
    /// On an empty bucket, the policy decides:
    /// [`InsaneError::AdmissionRejected`], [`InsaneError::Shed`], or
    /// [`InsaneError::Backpressure`] — see [`OverloadPolicy`].
    pub fn admit(
        &self,
        tenant: TenantId,
        class: TrafficClass,
        now_ns: u64,
    ) -> Result<(), InsaneError> {
        let idx = self.entry_index(tenant);
        let Some(entry) = self.entries.get(idx) else {
            return Ok(());
        };
        let Some(rate) = entry.rate else {
            entry.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        Self::refill(entry, rate, now_ns);
        let cap = rate.burst.saturating_mul(TOKEN);
        // Best-effort traffic cannot spend the protected reserve under
        // the class-aware policies; time-sensitive classes (and every
        // class under plain Reject) may drain the bucket to empty.
        let floor = match self.policy {
            OverloadPolicy::Reject => 0,
            OverloadPolicy::ShedLowest | OverloadPolicy::Backpressure => {
                if class == TrafficClass::BEST_EFFORT {
                    cap.saturating_mul(PROTECT_RESERVE_PCT) / 100
                } else {
                    0
                }
            }
        };
        let mut cur = entry.tokens_milli.load(Ordering::Relaxed);
        loop {
            if cur < floor.saturating_add(TOKEN) {
                return Err(self.deny(entry, class));
            }
            match entry.tokens_milli.compare_exchange_weak(
                cur,
                cur - TOKEN,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    entry.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(v) => cur = v,
            }
        }
    }

    fn deny(&self, entry: &Entry, class: TrafficClass) -> InsaneError {
        let best_effort = class == TrafficClass::BEST_EFFORT;
        match self.policy {
            OverloadPolicy::ShedLowest if best_effort => {
                entry.shed.fetch_add(1, Ordering::Relaxed);
                InsaneError::Shed {
                    tenant: entry.tenant,
                }
            }
            OverloadPolicy::Backpressure if best_effort => {
                entry.throttled.fetch_add(1, Ordering::Relaxed);
                InsaneError::Backpressure
            }
            _ => {
                entry.rejected.fetch_add(1, Ordering::Relaxed);
                InsaneError::AdmissionRejected {
                    tenant: entry.tenant,
                }
            }
        }
    }

    /// Resolves a full TX queue into the policy's error for `tenant`:
    /// under [`OverloadPolicy::ShedLowest`] a best-effort message is
    /// shed (counted, terminal), every other combination is the
    /// retryable [`InsaneError::Backpressure`] the emit path has always
    /// reported.
    pub(crate) fn on_tx_full(&self, tenant: TenantId, class: TrafficClass) -> InsaneError {
        if self.policy == OverloadPolicy::ShedLowest && class == TrafficClass::BEST_EFFORT {
            let idx = self.entry_index(tenant);
            if let Some(entry) = self.entries.get(idx) {
                entry.shed.fetch_add(1, Ordering::Relaxed);
                return InsaneError::Shed {
                    tenant: entry.tenant,
                };
            }
        }
        InsaneError::Backpressure
    }

    /// Point-in-time counters of every entry (the anonymous entry 0
    /// first, then registered tenants in registration order).
    pub fn usage(&self) -> Vec<AdmissionUsage> {
        self.entries
            .iter()
            .map(|e| AdmissionUsage {
                tenant: e.tenant,
                admitted: e.admitted.load(Ordering::Relaxed),
                rejected: e.rejected.load(Ordering::Relaxed),
                shed: e.shed.load(Ordering::Relaxed),
                throttled: e.throttled.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn controller(rate: TenantRate, policy: OverloadPolicy) -> AdmissionController {
        AdmissionController::new(&[(7, Some(rate))], policy)
    }

    #[test]
    fn unregistered_tenants_are_never_refused() {
        let ctl = controller(TenantRate::new(1, 1), OverloadPolicy::Reject);
        for i in 0..100 {
            ctl.admit(42, TrafficClass::BEST_EFFORT, i * 1_000).unwrap();
        }
        assert_eq!(ctl.usage()[0].admitted, 100);
        assert_eq!(ctl.usage()[0].rejected, 0);
    }

    #[test]
    fn burst_then_sustained_rate() {
        // 10 msg/s, burst 4: four back-to-back admits, then the bucket
        // is dry until 100 ms pass per token.
        let ctl = controller(TenantRate::new(10, 4), OverloadPolicy::Reject);
        for _ in 0..4 {
            ctl.admit(7, TrafficClass::BEST_EFFORT, SEC).unwrap();
        }
        assert!(matches!(
            ctl.admit(7, TrafficClass::BEST_EFFORT, SEC),
            Err(InsaneError::AdmissionRejected { tenant: 7 })
        ));
        // 100 ms later exactly one more token has dripped in.
        ctl.admit(7, TrafficClass::BEST_EFFORT, SEC + SEC / 10)
            .unwrap();
        assert!(matches!(
            ctl.admit(7, TrafficClass::BEST_EFFORT, SEC + SEC / 10),
            Err(InsaneError::AdmissionRejected { tenant: 7 })
        ));
        let u = &ctl.usage()[1];
        assert_eq!((u.tenant, u.admitted, u.rejected), (7, 5, 2));
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let ctl = controller(TenantRate::new(1_000_000, 2), OverloadPolicy::Reject);
        // A long idle period must not bank more than `burst` tokens.
        for _ in 0..2 {
            ctl.admit(7, TrafficClass::BEST_EFFORT, 100 * SEC).unwrap();
        }
        assert!(ctl.admit(7, TrafficClass::BEST_EFFORT, 100 * SEC).is_err());
    }

    #[test]
    fn shed_lowest_protects_time_sensitive_budget() {
        // Burst 8, reserve 25% = 2 tokens best effort cannot spend.
        let ctl = controller(TenantRate::new(1, 8), OverloadPolicy::ShedLowest);
        for _ in 0..6 {
            ctl.admit(7, TrafficClass::BEST_EFFORT, 0).unwrap();
        }
        // Best effort hits the protected reserve and is shed...
        assert!(matches!(
            ctl.admit(7, TrafficClass::BEST_EFFORT, 0),
            Err(InsaneError::Shed { tenant: 7 })
        ));
        // ...while time-critical still has the reserved budget.
        ctl.admit(7, TrafficClass::TIME_CRITICAL, 0).unwrap();
        ctl.admit(7, TrafficClass::TIME_CRITICAL, 0).unwrap();
        // A fully empty bucket rejects even time-critical, terminally.
        assert!(matches!(
            ctl.admit(7, TrafficClass::TIME_CRITICAL, 0),
            Err(InsaneError::AdmissionRejected { tenant: 7 })
        ));
        let u = &ctl.usage()[1];
        assert_eq!((u.admitted, u.rejected, u.shed), (8, 1, 1));
    }

    #[test]
    fn backpressure_policy_is_retryable_for_best_effort() {
        let ctl = controller(TenantRate::new(1, 4), OverloadPolicy::Backpressure);
        for _ in 0..3 {
            ctl.admit(7, TrafficClass::BEST_EFFORT, 0).unwrap();
        }
        assert!(matches!(
            ctl.admit(7, TrafficClass::BEST_EFFORT, 0),
            Err(InsaneError::Backpressure)
        ));
        assert_eq!(ctl.usage()[1].throttled, 1);
        // The reserve is still spendable by a time-sensitive message.
        ctl.admit(7, TrafficClass::TIME_CRITICAL, 0).unwrap();
    }

    #[test]
    fn tx_full_shed_only_under_shed_policy() {
        let ctl = controller(TenantRate::new(1, 1), OverloadPolicy::ShedLowest);
        assert!(matches!(
            ctl.on_tx_full(7, TrafficClass::BEST_EFFORT),
            InsaneError::Shed { tenant: 7 }
        ));
        assert!(matches!(
            ctl.on_tx_full(7, TrafficClass::TIME_CRITICAL),
            InsaneError::Backpressure
        ));
        let ctl = controller(TenantRate::new(1, 1), OverloadPolicy::Reject);
        assert!(matches!(
            ctl.on_tx_full(7, TrafficClass::BEST_EFFORT),
            InsaneError::Backpressure
        ));
    }
}
