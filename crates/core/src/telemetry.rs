//! Runtime telemetry glue: configuration, recorder handles, and the
//! introspection endpoint plumbing.
//!
//! Everything datapath-facing lives behind thin wrapper types with two
//! implementations selected by the `telemetry` cargo feature: the real
//! one forwards to `insane-telemetry` recorders, the stub compiles to
//! nothing. Call sites in the runtime and client library are identical
//! either way — no `cfg` outside this module.
//!
//! The span points instrumented across the stack:
//!
//! * **lend** — `Source::get_buffer`; accounted by the memory pools
//!   (`PoolStats::acquires` / occupancy), surfaced per pool in the
//!   snapshot.
//! * **emit** — `MessageMeta::emit_ns`, stamped by `Source::emit`.
//! * **tx** — `MessageMeta::wire_start_ns`, stamped when a datapath
//!   plugin puts the frame on the wire; per-datapath `tx_messages` /
//!   `scheduled` counters.
//! * **rx** — wire end, derived from the receive timestamp and modeled
//!   wire time; per-datapath `rx_messages` counters.
//! * **consume** — `Sink::consume` (or the sink callback), where the
//!   [`LatencyBreakdown`] is computed and recorded into the stream's
//!   histograms.

use std::time::Duration;

/// Runtime telemetry configuration (part of
/// [`RuntimeConfig`](crate::RuntimeConfig)).
///
/// With the `telemetry` cargo feature disabled this struct still
/// exists (so configs are portable) but has no effect. With the
/// feature enabled, `enabled: false` skips recorder creation entirely:
/// the per-message cost is one `Option` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch for recorder creation.
    pub enabled: bool,
    /// Histogram sampling period: every `sample_every`-th consumed
    /// message is recorded into latency histograms (1 = all, 0 =
    /// none). Counters and budget checks always run.
    pub sample_every: u64,
    /// Latency budget applied to time-sensitive streams (traffic class
    /// above best effort): consumed messages whose total one-way
    /// latency exceeds it count as QoS-budget violations. 0 disables
    /// budget checking.
    pub latency_budget_ns: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_every: 1,
            latency_budget_ns: 0,
        }
    }
}

impl TelemetryConfig {
    /// A configuration with recording switched off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Sets the histogram sampling period (1 = record everything).
    pub fn with_sample_every(mut self, period: u64) -> Self {
        self.sample_every = period;
        self
    }

    /// Sets the QoS latency budget for time-sensitive streams.
    pub fn with_latency_budget(mut self, budget: Duration) -> Self {
        self.latency_budget_ns = budget.as_nanos().min(u64::MAX as u128) as u64;
        self
    }
}

#[cfg(feature = "telemetry")]
mod glue {
    use super::TelemetryConfig;
    use crate::stats::{LatencyBreakdown, MessageMeta};
    use insane_telemetry::{
        BreakdownSample, DatapathTelemetry, Registry, RegistrySnapshot, StreamTelemetry,
        TenantTelemetry,
    };
    use insane_tsn::TrafficClass;
    use std::sync::Arc;

    /// Per-runtime telemetry root (real implementation).
    #[derive(Debug)]
    pub(crate) struct RuntimeTelemetry {
        registry: Option<Arc<Registry>>,
        budget_ns: u64,
    }

    impl RuntimeTelemetry {
        pub(crate) fn new(cfg: &TelemetryConfig) -> Self {
            Self {
                registry: cfg
                    .enabled
                    .then(|| Arc::new(Registry::new(cfg.sample_every))),
                budget_ns: cfg.latency_budget_ns,
            }
        }

        /// Registers the counter bundle for one shard of one datapath.
        pub(crate) fn datapath(&self, name: &str, shard: usize) -> DatapathTel {
            DatapathTel(
                self.registry
                    .as_ref()
                    .map(|reg| reg.register_datapath_shard(name, shard)),
            )
        }

        /// Returns (creating on first use) the per-stream recorder
        /// handle for `channel`, paired with the consuming `tenant`'s
        /// rollup recorder. The handle is cached by the caller; no
        /// lock is taken per message.
        pub(crate) fn stream(
            &self,
            channel: u32,
            class: TrafficClass,
            tenant: insane_memory::TenantId,
        ) -> SinkTel {
            SinkTel(self.registry.as_ref().map(|reg| {
                let best_effort = class == TrafficClass::BEST_EFFORT;
                let label = if best_effort {
                    "best-effort".to_string()
                } else {
                    format!("tc{}", class.value())
                };
                let budget = if best_effort { 0 } else { self.budget_ns };
                (reg.stream(channel, &label, budget), reg.tenant(tenant))
            }))
        }

        /// Snapshot of every stream/datapath recorder (None when
        /// recording is disabled).
        pub(crate) fn snapshot(&self) -> Option<RegistrySnapshot> {
            self.registry.as_ref().map(|reg| reg.snapshot())
        }
    }

    /// Per-datapath counter handle held by the polling loop.
    #[derive(Debug)]
    pub(crate) struct DatapathTel(Option<Arc<DatapathTelemetry>>);

    impl DatapathTel {
        pub(crate) fn on_tx(&self, n: u64) {
            if let Some(t) = &self.0 {
                t.tx_messages.add(n);
            }
        }

        pub(crate) fn on_rx(&self, n: u64) {
            if let Some(t) = &self.0 {
                t.rx_messages.add(n);
            }
        }

        pub(crate) fn on_scheduled(&self, n: u64) {
            if let Some(t) = &self.0 {
                t.scheduled.add(n);
            }
        }

        /// Folds one batch of per-class gate-deferral events (taken from
        /// a time-aware scheduler after a drain pass) into the shard's
        /// per-class counters.
        pub(crate) fn on_gate_deferred(&self, per_class: &[u64; 8]) {
            if let Some(t) = &self.0 {
                for (counter, &n) in t.gate_deferrals.iter().zip(per_class) {
                    counter.add(n);
                }
            }
        }
    }

    /// Per-stream recorder handle cached in each sink's shared state,
    /// paired with the owning tenant's cross-stream rollup.
    #[derive(Debug)]
    pub(crate) struct SinkTel(Option<(Arc<StreamTelemetry>, Arc<TenantTelemetry>)>);

    impl SinkTel {
        /// A disconnected handle (used by runtime unit tests).
        #[allow(dead_code)]
        pub(crate) fn none() -> Self {
            SinkTel(None)
        }

        /// Records one consumed message into the stream's breakdown
        /// histograms and the tenant's end-to-end rollup. The breakdown
        /// is only computed when a recorder is attached.
        pub(crate) fn observe(&self, meta: &MessageMeta, consumed_ns: u64) {
            if let Some((stream, tenant)) = &self.0 {
                let b = LatencyBreakdown::from_meta(meta, consumed_ns);
                let sample = to_sample(&b);
                stream.observe(&sample);
                tenant.observe_total(sample.total_ns());
            }
        }
    }

    fn to_sample(b: &LatencyBreakdown) -> BreakdownSample {
        BreakdownSample {
            send_ns: b.send_ns,
            network_ns: b.network_ns,
            receive_ns: b.receive_ns,
            processing_ns: b.processing_ns,
            reassembly_ns: b.reassembly_ns,
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod glue {
    //! No-op stand-ins compiled when the `telemetry` feature is off;
    //! every method body is empty, so the datapath carries no
    //! telemetry branches at all.

    use super::TelemetryConfig;
    use crate::stats::MessageMeta;
    use insane_tsn::TrafficClass;

    #[derive(Debug)]
    pub(crate) struct RuntimeTelemetry;

    impl RuntimeTelemetry {
        pub(crate) fn new(_cfg: &TelemetryConfig) -> Self {
            RuntimeTelemetry
        }

        pub(crate) fn datapath(&self, _name: &str, _shard: usize) -> DatapathTel {
            DatapathTel
        }

        pub(crate) fn stream(
            &self,
            _channel: u32,
            _class: TrafficClass,
            _tenant: insane_memory::TenantId,
        ) -> SinkTel {
            SinkTel
        }
    }

    #[derive(Debug)]
    pub(crate) struct DatapathTel;

    impl DatapathTel {
        pub(crate) fn on_tx(&self, _n: u64) {}
        pub(crate) fn on_rx(&self, _n: u64) {}
        pub(crate) fn on_scheduled(&self, _n: u64) {}
        pub(crate) fn on_gate_deferred(&self, _per_class: &[u64; 8]) {}
    }

    #[derive(Debug)]
    pub(crate) struct SinkTel;

    impl SinkTel {
        #[allow(dead_code)]
        pub(crate) fn none() -> Self {
            SinkTel
        }

        pub(crate) fn observe(&self, _meta: &MessageMeta, _consumed_ns: u64) {}
    }
}

pub(crate) use glue::{DatapathTel, RuntimeTelemetry, SinkTel};

/// The Unix-domain-socket introspection server (feature-gated).
///
/// Protocol: one request line per connection; the server answers with
/// one JSON line and closes. `stats` (or an empty line) returns the
/// full runtime snapshot; `ping` returns a liveness probe;
/// `reload key=value ...` hot-reloads runtime tunables (DESIGN.md
/// §12); anything else gets a JSON error.
#[cfg(feature = "telemetry")]
pub(crate) mod introspection {
    use crate::runtime::RuntimeInner;
    use crate::InsaneError;
    use insane_ipc::uds::{bind_guarded, BoundSocket};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::sync::Weak;
    use std::time::Duration;

    /// Binds `path` and spawns the accept-loop thread. The thread
    /// exits when the runtime stops or is dropped, and removes the
    /// socket file on the way out.
    ///
    /// Binding goes through the shared guarded UDS lifecycle
    /// (`insane_ipc::uds`): a stale file left by a crashed process is
    /// probed and unlinked (never blindly evicted from under a live
    /// runtime), the file is restricted to `0600`, and the
    /// [`BoundSocket`] guard removes it on clean shutdown.
    pub(crate) fn spawn(
        weak: Weak<RuntimeInner>,
        path: PathBuf,
    ) -> Result<std::thread::JoinHandle<()>, InsaneError> {
        let bound = bind_guarded(&path).map_err(|e| {
            InsaneError::Internal(format!(
                "introspection endpoint bind on {} failed: {e}",
                path.display()
            ))
        })?;
        bound.listener().set_nonblocking(true).map_err(|e| {
            InsaneError::Internal(format!("introspection endpoint configuration failed: {e}"))
        })?;
        std::thread::Builder::new()
            .name("insane-introspect".to_string())
            .spawn(move || accept_loop(weak, bound))
            .map_err(|e| {
                InsaneError::Internal(format!("failed to spawn introspection thread: {e}"))
            })
    }

    fn accept_loop(weak: Weak<RuntimeInner>, bound: BoundSocket) {
        loop {
            let Some(inner) = weak.upgrade() else { break };
            if inner.is_stopped() {
                break;
            }
            match bound.listener().accept() {
                Ok((stream, _)) => serve_one(&inner, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    drop(inner);
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    drop(inner);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // `bound` drops here, unlinking the socket file.
    }

    fn serve_one(inner: &RuntimeInner, stream: UnixStream) {
        // The accepted stream inherits non-blocking from the listener;
        // switch to blocking reads with a timeout so a slow client
        // cannot wedge the endpoint.
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line).is_err() {
            return;
        }
        let response = match line.trim() {
            "" | "stats" => inner.introspection_json(),
            "ping" => "{\"ok\":true}".to_string(),
            reload if reload == "reload" || reload.starts_with("reload ") => {
                match inner.reload_from_kv(reload.strip_prefix("reload").unwrap_or_default()) {
                    Ok(summary) => insane_telemetry::Value::object([
                        ("ok", insane_telemetry::Value::Bool(true)),
                        ("reloaded", insane_telemetry::Value::from(summary)),
                    ])
                    .to_string(),
                    Err(e) => insane_telemetry::Value::object([(
                        "error",
                        insane_telemetry::Value::from(format!("reload rejected: {e}")),
                    )])
                    .to_string(),
                }
            }
            other => insane_telemetry::Value::object([(
                "error",
                insane_telemetry::Value::from(format!("unknown request {other:?}")),
            )])
            .to_string(),
        };
        let mut stream = reader.into_inner();
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let cfg = TelemetryConfig::default()
            .with_sample_every(8)
            .with_latency_budget(Duration::from_micros(150));
        assert!(cfg.enabled);
        assert_eq!(cfg.sample_every, 8);
        assert_eq!(cfg.latency_budget_ns, 150_000);
        assert!(!TelemetryConfig::disabled().enabled);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn disabled_config_creates_no_recorders() {
        let tel = RuntimeTelemetry::new(&TelemetryConfig::disabled());
        assert!(tel.snapshot().is_none());
        // Handles from a disabled root are inert but callable.
        let dp = tel.datapath("kernel-udp", 0);
        dp.on_tx(1);
        dp.on_rx(1);
        dp.on_scheduled(1);
        let sink = tel.stream(1, insane_tsn::TrafficClass::BEST_EFFORT, 0);
        sink.observe(
            &crate::stats::MessageMeta {
                channel: 1,
                seq: 0,
                src_runtime: 0,
                frag: (0, 1, 0),
                emit_ns: 0,
                wire_start_ns: 0,
                wire_ns: 0,
                dispatched_ns: 0,
            },
            0,
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn budget_applies_to_time_sensitive_streams_only() {
        let cfg = TelemetryConfig::default().with_latency_budget(Duration::from_nanos(100));
        let tel = RuntimeTelemetry::new(&cfg);
        let meta = crate::stats::MessageMeta {
            channel: 0,
            seq: 0,
            src_runtime: 0,
            frag: (0, 1, 0),
            emit_ns: 0,
            wire_start_ns: 100,
            wire_ns: 100,
            dispatched_ns: 250,
            // total one-way latency vs consume at 300: 300 ns > 100 ns
        };
        let be = tel.stream(1, insane_tsn::TrafficClass::BEST_EFFORT, 3);
        be.observe(&meta, 300);
        let tc = tel.stream(2, insane_tsn::TrafficClass::TIME_CRITICAL, 3);
        tc.observe(&meta, 300);
        let snap = tel.snapshot().expect("enabled registry");
        let find = |ch: u32| {
            snap.streams
                .iter()
                .find(|s| s.channel == ch)
                .expect("stream present")
        };
        assert_eq!(find(1).budget_violations, 0, "best effort has no budget");
        assert_eq!(find(2).budget_violations, 1);
        assert_eq!(find(2).class, "tc7");
        assert_eq!(find(1).class, "best-effort");
    }
}
