//! Instrumentation: per-message metadata and runtime counters.
//!
//! The per-message timestamps feed the latency-breakdown experiment of
//! Fig. 6 (send / network / receive / data-processing components); the
//! counters back the multi-sink saturation analysis of Fig. 8b.

use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata travelling with every delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMeta {
    /// Channel the message arrived on.
    pub channel: u32,
    /// Sender's per-stream sequence number.
    pub seq: u64,
    /// Runtime id of the sender.
    pub src_runtime: u32,
    /// App-level fragmentation: `(index, count, total_len)`.
    pub frag: (u16, u16, u32),
    /// Epoch timestamp of the producer's `emit` call.
    pub emit_ns: u64,
    /// Epoch timestamp at which the sending datapath put the message on
    /// the wire.
    pub wire_start_ns: u64,
    /// Time spent on the wire (serialization + propagation + switch).
    pub wire_ns: u64,
    /// Epoch timestamp at which the receiving runtime dispatched the
    /// message to the sink queue.
    pub dispatched_ns: u64,
}

impl MessageMeta {
    /// Whether the message is one fragment of a larger unit.
    pub fn is_fragment(&self) -> bool {
        self.frag.1 > 1
    }
}

/// One-way latency breakdown of a consumed message (Fig. 6 components,
/// extended with the fragment-reassembly wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Emit → wire: sender-side middleware + datapath TX work.
    pub send_ns: u64,
    /// Time on the wire.
    pub network_ns: u64,
    /// Wire end → sink queue: receiver-side datapath RX + dispatch work.
    pub receive_ns: u64,
    /// Sink queue → consume return: application-side processing delay.
    pub processing_ns: u64,
    /// Extra wait for sibling fragments of the same application-level
    /// message (zero for unfragmented messages).  Reassembled messages
    /// (e.g. Lunar streaming frames) carry the completing fragment's
    /// pipeline components plus this residue, so their total equals
    /// first-emit → reassembly-complete (see
    /// [`LatencyBreakdown::attribute_reassembly`]).
    pub reassembly_ns: u64,
}

impl LatencyBreakdown {
    /// Total one-way latency.
    pub fn total_ns(&self) -> u64 {
        self.send_ns + self.network_ns + self.receive_ns + self.processing_ns + self.reassembly_ns
    }

    /// Computes the breakdown from message metadata and the consume time.
    pub(crate) fn from_meta(meta: &MessageMeta, consumed_ns: u64) -> Self {
        let wire_end = meta.wire_start_ns + meta.wire_ns;
        Self {
            send_ns: meta.wire_start_ns.saturating_sub(meta.emit_ns),
            network_ns: meta.wire_ns,
            receive_ns: meta.dispatched_ns.saturating_sub(wire_end),
            processing_ns: consumed_ns.saturating_sub(meta.dispatched_ns),
            reassembly_ns: 0,
        }
    }

    /// Folds one fragment's breakdown into an aggregate: component-wise
    /// maximum, a conservative per-stage envelope over the fragments.
    ///
    /// Note the maxima of different fragments can overlap in wall-clock
    /// time (fragments are emitted serially), so the sum of the merged
    /// components may exceed the frame's elapsed window.  For a parent
    /// breakdown whose total must equal the measured frame latency,
    /// start from the *completing* fragment's breakdown and call
    /// [`LatencyBreakdown::attribute_reassembly`] instead.
    pub fn merge_fragment(&mut self, frag: &LatencyBreakdown) {
        self.send_ns = self.send_ns.max(frag.send_ns);
        self.network_ns = self.network_ns.max(frag.network_ns);
        self.receive_ns = self.receive_ns.max(frag.receive_ns);
        self.processing_ns = self.processing_ns.max(frag.processing_ns);
        self.reassembly_ns = self.reassembly_ns.max(frag.reassembly_ns);
    }

    /// Charges the residual reassembly wait so that [`total_ns`]
    /// equals `completed_ns - first_emit_ns` exactly: the existing
    /// components cover the completing fragment's own pipeline trip
    /// (which started no earlier than `first_emit_ns` and ended no
    /// later than `completed_ns`), and whatever wall-clock remains is
    /// time the parent message spent emitting and waiting for sibling
    /// fragments.
    ///
    /// [`total_ns`]: LatencyBreakdown::total_ns
    pub fn attribute_reassembly(&mut self, first_emit_ns: u64, completed_ns: u64) {
        let elapsed = completed_ns.saturating_sub(first_emit_ns);
        let pipeline = self
            .send_ns
            .saturating_add(self.network_ns)
            .saturating_add(self.receive_ns)
            .saturating_add(self.processing_ns);
        self.reassembly_ns = elapsed.saturating_sub(pipeline);
    }
}

/// Aggregate counters of one runtime.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Messages handed to a datapath for remote delivery.
    pub tx_messages: AtomicU64,
    /// Messages received from a datapath.
    pub rx_messages: AtomicU64,
    /// Local (same-host, shared-memory) deliveries.
    pub local_deliveries: AtomicU64,
    /// Deliveries dropped because a sink queue was full.
    pub sink_drops: AtomicU64,
    /// Control-plane messages processed.
    pub control_messages: AtomicU64,
    /// Streams created with a QoS fallback warning (§5.2).
    pub fallback_streams: AtomicU64,
    /// Polling iterations that found no work.
    pub idle_polls: AtomicU64,
    /// Inbound frames rejected by the packet engine (unparseable headers
    /// or a failed payload checksum).
    pub rx_rejected: AtomicU64,
    /// Control messages retransmitted after missing their ack deadline.
    pub control_retransmits: AtomicU64,
    /// Control messages abandoned after exhausting every retransmit.
    pub control_timeouts: AtomicU64,
    /// Control sends that failed outright at the datapath.
    pub control_send_failures: AtomicU64,
    /// Heartbeats sent to peers.
    pub heartbeats_sent: AtomicU64,
    /// Peers expired after missing too many heartbeats.
    pub peer_expiries: AtomicU64,
    /// Peers that came back after an expiry.
    pub peers_recovered: AtomicU64,
    /// Datapath-down transitions that triggered a failover to kernel UDP.
    pub failover_events: AtomicU64,
    /// Datapath recoveries that migrated traffic back off kernel UDP.
    pub failback_events: AtomicU64,
    /// Messages rerouted over kernel UDP because their datapath was down.
    pub failover_messages: AtomicU64,
    /// Scheduler passes in which a queued frame was held back by a
    /// closed gate, the guard band, or a too-short remaining window
    /// (time-aware shaping only; summed across classes).
    pub gate_deferrals: AtomicU64,
}

/// Plain-data snapshot of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Messages handed to a datapath for remote delivery.
    pub tx_messages: u64,
    /// Messages received from a datapath.
    pub rx_messages: u64,
    /// Local (same-host) deliveries.
    pub local_deliveries: u64,
    /// Deliveries dropped at full sink queues.
    pub sink_drops: u64,
    /// Control-plane messages processed.
    pub control_messages: u64,
    /// Streams created with a fallback warning.
    pub fallback_streams: u64,
    /// Idle polling iterations.
    pub idle_polls: u64,
    /// Inbound frames rejected by the packet engine.
    pub rx_rejected: u64,
    /// Control messages retransmitted.
    pub control_retransmits: u64,
    /// Control messages abandoned after exhausting retransmits.
    pub control_timeouts: u64,
    /// Control sends that failed at the datapath.
    pub control_send_failures: u64,
    /// Heartbeats sent.
    pub heartbeats_sent: u64,
    /// Peers expired after missed heartbeats.
    pub peer_expiries: u64,
    /// Peers recovered after an expiry.
    pub peers_recovered: u64,
    /// Failovers to kernel UDP.
    pub failover_events: u64,
    /// Migrations back off kernel UDP.
    pub failback_events: u64,
    /// Messages rerouted during failover.
    pub failover_messages: u64,
    /// Frames held back by gates/guard bands (time-aware shaping).
    pub gate_deferrals: u64,
}

#[cfg(feature = "telemetry")]
impl StatsSnapshot {
    /// JSON form, embedded in the introspection snapshot.
    pub(crate) fn to_json(self) -> insane_telemetry::Value {
        use insane_telemetry::Value;
        Value::object([
            ("tx_messages", Value::from(self.tx_messages)),
            ("rx_messages", Value::from(self.rx_messages)),
            ("local_deliveries", Value::from(self.local_deliveries)),
            ("sink_drops", Value::from(self.sink_drops)),
            ("control_messages", Value::from(self.control_messages)),
            ("fallback_streams", Value::from(self.fallback_streams)),
            ("idle_polls", Value::from(self.idle_polls)),
            ("rx_rejected", Value::from(self.rx_rejected)),
            ("control_retransmits", Value::from(self.control_retransmits)),
            ("control_timeouts", Value::from(self.control_timeouts)),
            (
                "control_send_failures",
                Value::from(self.control_send_failures),
            ),
            ("heartbeats_sent", Value::from(self.heartbeats_sent)),
            ("peer_expiries", Value::from(self.peer_expiries)),
            ("peers_recovered", Value::from(self.peers_recovered)),
            ("failover_events", Value::from(self.failover_events)),
            ("failback_events", Value::from(self.failback_events)),
            ("failover_messages", Value::from(self.failover_messages)),
            ("gate_deferrals", Value::from(self.gate_deferrals)),
        ])
    }
}

impl RuntimeStats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tx_messages: self.tx_messages.load(Ordering::Relaxed),
            rx_messages: self.rx_messages.load(Ordering::Relaxed),
            local_deliveries: self.local_deliveries.load(Ordering::Relaxed),
            sink_drops: self.sink_drops.load(Ordering::Relaxed),
            control_messages: self.control_messages.load(Ordering::Relaxed),
            fallback_streams: self.fallback_streams.load(Ordering::Relaxed),
            idle_polls: self.idle_polls.load(Ordering::Relaxed),
            rx_rejected: self.rx_rejected.load(Ordering::Relaxed),
            control_retransmits: self.control_retransmits.load(Ordering::Relaxed),
            control_timeouts: self.control_timeouts.load(Ordering::Relaxed),
            control_send_failures: self.control_send_failures.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            peer_expiries: self.peer_expiries.load(Ordering::Relaxed),
            peers_recovered: self.peers_recovered.load(Ordering::Relaxed),
            failover_events: self.failover_events.load(Ordering::Relaxed),
            failback_events: self.failback_events.load(Ordering::Relaxed),
            failover_messages: self.failover_messages.load(Ordering::Relaxed),
            gate_deferrals: self.gate_deferrals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_components_sum_to_total() {
        let meta = MessageMeta {
            channel: 1,
            seq: 2,
            src_runtime: 3,
            frag: (0, 1, 10),
            emit_ns: 1_000,
            wire_start_ns: 1_400,
            wire_ns: 2_000,
            dispatched_ns: 3_900,
            // wire ends at 3_400; dispatch 500 later
        };
        let b = LatencyBreakdown::from_meta(&meta, 4_100);
        assert_eq!(b.send_ns, 400);
        assert_eq!(b.network_ns, 2_000);
        assert_eq!(b.receive_ns, 500);
        assert_eq!(b.processing_ns, 200);
        assert_eq!(b.total_ns(), 3_100);
        assert_eq!(b.total_ns(), 4_100 - meta.emit_ns);
    }

    #[test]
    fn breakdown_saturates_on_clock_skew() {
        let meta = MessageMeta {
            channel: 0,
            seq: 0,
            src_runtime: 0,
            frag: (0, 1, 0),
            emit_ns: 5_000,
            wire_start_ns: 4_000, // skew: wire stamp before emit
            wire_ns: 100,
            dispatched_ns: 3_000,
        };
        let b = LatencyBreakdown::from_meta(&meta, 2_000);
        assert_eq!(b.send_ns, 0);
        assert_eq!(b.receive_ns, 0);
        assert_eq!(b.processing_ns, 0);
    }

    #[test]
    fn fragment_flag() {
        let mut meta = MessageMeta {
            channel: 0,
            seq: 0,
            src_runtime: 0,
            frag: (0, 1, 10),
            emit_ns: 0,
            wire_start_ns: 0,
            wire_ns: 0,
            dispatched_ns: 0,
        };
        assert!(!meta.is_fragment());
        meta.frag = (2, 8, 100_000);
        assert!(meta.is_fragment());
    }

    #[test]
    fn fragment_merge_takes_component_maxima() {
        let mut parent = LatencyBreakdown::default();
        parent.merge_fragment(&LatencyBreakdown {
            send_ns: 100,
            network_ns: 2_000,
            receive_ns: 50,
            processing_ns: 10,
            reassembly_ns: 0,
        });
        parent.merge_fragment(&LatencyBreakdown {
            send_ns: 400,
            network_ns: 1_500,
            receive_ns: 80,
            processing_ns: 5,
            reassembly_ns: 0,
        });
        assert_eq!(parent.send_ns, 400);
        assert_eq!(parent.network_ns, 2_000);
        assert_eq!(parent.receive_ns, 80);
        assert_eq!(parent.processing_ns, 10);
    }

    #[test]
    fn reassembly_residue_closes_the_total() {
        let mut parent = LatencyBreakdown {
            send_ns: 400,
            network_ns: 2_000,
            receive_ns: 80,
            processing_ns: 10,
            reassembly_ns: 0,
        };
        // First fragment emitted at t=1_000; the set completed at
        // t=4_500 → 3_500 elapsed, of which 2_490 is pipeline maxima.
        parent.attribute_reassembly(1_000, 4_500);
        assert_eq!(parent.reassembly_ns, 3_500 - 2_490);
        assert_eq!(parent.total_ns(), 3_500);
    }

    #[test]
    fn reassembly_residue_saturates_on_skew() {
        let mut parent = LatencyBreakdown {
            send_ns: 5_000,
            ..Default::default()
        };
        parent.attribute_reassembly(1_000, 2_000);
        assert_eq!(parent.reassembly_ns, 0);
    }

    #[test]
    fn stats_snapshot_reflects_counters() {
        let stats = RuntimeStats::default();
        stats.tx_messages.store(7, Ordering::Relaxed);
        stats.sink_drops.store(2, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.tx_messages, 7);
        assert_eq!(snap.sink_drops, 2);
        assert_eq!(snap.rx_messages, 0);
    }
}
