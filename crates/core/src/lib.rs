//! INSANE: a QoS-aware network-acceleration middleware for the edge cloud.
//!
//! This crate is the Rust reproduction of the INSANE middleware
//! (Middleware '23): applications declare *what* their communication needs
//! through high-level QoS policies, and the middleware decides *how* —
//! binding each stream at runtime to the most appropriate network
//! acceleration technology available on the local host (kernel UDP, XDP,
//! DPDK, or RDMA).
//!
//! Two components mirror the paper's micro-kernel-inspired architecture
//! (§5):
//!
//! * the **client library** — [`Session`], [`Stream`], [`Source`],
//!   [`Sink`] and the zero-copy buffer primitives of Fig. 2;
//! * the **runtime** ([`Runtime`]) — one per host, owning the memory
//!   manager (slot pools), the packet scheduler (FIFO or IEEE 802.1Qbv),
//!   the polling threads, and one *datapath plugin* per technology.
//!
//! The client library and the runtime exchange slot ids over lock-free
//! queues; payload bytes are written once by the producer and read once
//! by the consumer, whatever technology carries them.
//!
//! # Example
//!
//! ```
//! use insane_core::{QosPolicy, Runtime, RuntimeConfig, Session, ChannelId, ConsumeMode};
//! use insane_fabric::{Fabric, TestbedProfile};
//!
//! let fabric = Fabric::new(TestbedProfile::local());
//! let host = fabric.add_host("edge-node");
//! let runtime = Runtime::start(RuntimeConfig::new(1), &fabric, host)?;
//!
//! let session = Session::connect(&runtime)?;
//! let stream = session.create_stream(QosPolicy::default())?;
//! let source = stream.create_source(ChannelId(7))?;
//! let sink = stream.create_sink(ChannelId(7))?;
//!
//! let mut buf = source.get_buffer(5)?;
//! buf.copy_from_slice(b"hello");
//! source.emit(buf)?;
//!
//! let msg = sink.consume(ConsumeMode::Blocking)?;
//! assert_eq!(&*msg, b"hello");
//! # Ok::<(), insane_core::InsaneError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
mod api;
pub mod qos;
pub mod runtime;
pub mod stats;
pub mod telemetry;
pub mod tenant_drr;

pub use admission::{AdmissionUsage, OverloadPolicy, TenantRate};
pub use api::{
    ConsumeMode, EmitOutcome, EmitToken, IncomingMessage, MessageBuffer, Session, SessionConfig,
    Sink, SinkStats, Source, Stream,
};
pub use qos::{
    Acceleration, MappedPath, MappingStrategy, QosPolicy, ResourceUsage, TimeSensitivity,
};
pub use runtime::shard::{shard_of_channel, shard_of_stream};
pub use runtime::tunables::Tunables;
pub use runtime::{
    ControlPlaneConfig, Runtime, RuntimeConfig, SchedulerChoice, TenantSpec, ThreadingMode,
};
pub use telemetry::TelemetryConfig;

// The read-mostly snapshot primitive behind the lock-free hot path
// (dispatch tables, tunables — DESIGN.md §12), re-exported for
// harnesses that want to benchmark or reuse it directly.
pub use insane_queues::SnapshotCell;
pub use tenant_drr::{TenantDrr, Tenanted};

// Re-exported so downstream crates can match on the middleware's nested
// error causes without depending on the substrate crates directly.
pub use insane_fabric::Technology;
pub use insane_memory::MemoryError;
// Multi-tenancy vocabulary shared with the memory crate's quota ledger.
pub use insane_memory::{TenantId, TenantQuota, TenantUsage, DEFAULT_TENANT};

use core::fmt;

/// Application-chosen channel identifier (§5.1: sources and sinks with the
/// same channel id within the same stream communicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel#{}", self.0)
    }
}

/// Byte offset of the INSANE header within a framed slot.
pub(crate) const INSANE_HDR_OFFSET: usize = insane_netstack::FRAME_OVERHEAD;

/// Byte offset of the application payload within a framed slot: every
/// `get_buffer` reserves this much headroom so TX is zero-copy on every
/// datapath (Ethernet/IPv4/UDP headers for the kernel-bypassing stacks,
/// then the INSANE header).
pub(crate) const PAYLOAD_OFFSET: usize =
    insane_netstack::FRAME_OVERHEAD + insane_netstack::insane_hdr::HEADER_LEN;

/// Errors surfaced by the INSANE API and runtime.
#[derive(Debug)]
pub enum InsaneError {
    /// Memory-pool failure (exhausted, oversized request, stale token).
    Memory(insane_memory::MemoryError),
    /// Simulated-device or wire failure.
    Fabric(insane_fabric::FabricError),
    /// Packet framing/parsing failure.
    Netstack(insane_netstack::NetstackError),
    /// Scheduler configuration failure.
    Tsn(insane_tsn::TsnError),
    /// The session or runtime has been shut down.
    Closed,
    /// Non-blocking consume found no message.
    WouldBlock,
    /// Blocking operations need a started runtime (not manual mode).
    RuntimeNotStarted,
    /// The requested payload does not fit any datapath MTU for the stream.
    PayloadTooLarge {
        /// Requested payload bytes.
        len: usize,
        /// Largest payload the mapped datapath can carry.
        max: usize,
    },
    /// A sink created with a callback cannot also be consumed directly.
    CallbackSink,
    /// Internal queue between library and runtime is full (back-pressure).
    Backpressure,
    /// The tenant's admission token bucket is empty: the message was
    /// refused terminally under the configured rate limit
    /// (see [`OverloadPolicy`]).
    AdmissionRejected {
        /// The over-rate tenant.
        tenant: TenantId,
    },
    /// Overload shed: a lowest-criticality message was dropped to keep
    /// the tenant's time-sensitive budget intact
    /// ([`OverloadPolicy::ShedLowest`]).
    Shed {
        /// The tenant whose message was shed.
        tenant: TenantId,
    },
    /// A configuration or reload request was rejected before taking
    /// effect (e.g. inconsistent [`runtime::tunables::Tunables`]).
    InvalidConfig(String),
    /// An internal invariant failed or an OS resource was unavailable
    /// (e.g. a polling thread could not be spawned).
    Internal(String),
}

impl fmt::Display for InsaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsaneError::Memory(e) => write!(f, "memory manager: {e}"),
            InsaneError::Fabric(e) => write!(f, "datapath: {e}"),
            InsaneError::Netstack(e) => write!(f, "packet engine: {e}"),
            InsaneError::Tsn(e) => write!(f, "scheduler: {e}"),
            InsaneError::Closed => write!(f, "session or runtime is closed"),
            InsaneError::WouldBlock => write!(f, "no message available"),
            InsaneError::RuntimeNotStarted => {
                write!(f, "blocking operation requires a started runtime")
            }
            InsaneError::PayloadTooLarge { len, max } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the datapath maximum of {max}"
                )
            }
            InsaneError::CallbackSink => {
                write!(
                    f,
                    "sink delivers through its callback; direct consume is unavailable"
                )
            }
            InsaneError::Backpressure => write!(f, "runtime queue full, retry later"),
            InsaneError::AdmissionRejected { tenant } => {
                write!(f, "tenant {tenant} exceeded its admission rate limit")
            }
            InsaneError::Shed { tenant } => {
                write!(
                    f,
                    "message shed under overload to protect tenant {tenant}'s time-sensitive budget"
                )
            }
            InsaneError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            InsaneError::Internal(msg) => write!(f, "internal runtime failure: {msg}"),
        }
    }
}

impl std::error::Error for InsaneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsaneError::Memory(e) => Some(e),
            InsaneError::Fabric(e) => Some(e),
            InsaneError::Netstack(e) => Some(e),
            InsaneError::Tsn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<insane_memory::MemoryError> for InsaneError {
    fn from(e: insane_memory::MemoryError) -> Self {
        InsaneError::Memory(e)
    }
}

impl From<insane_fabric::FabricError> for InsaneError {
    fn from(e: insane_fabric::FabricError) -> Self {
        InsaneError::Fabric(e)
    }
}

impl From<insane_netstack::NetstackError> for InsaneError {
    fn from(e: insane_netstack::NetstackError) -> Self {
        InsaneError::Netstack(e)
    }
}

impl From<insane_tsn::TsnError> for InsaneError {
    fn from(e: insane_tsn::TsnError) -> Self {
        InsaneError::Tsn(e)
    }
}

type WarningHook = std::sync::Arc<dyn Fn(&str) + Send + Sync>;

/// The process-wide warning hook (None = silent).
///
/// `RwLock` rather than `OnceLock` so tests can install and replace hooks
/// freely; warnings are rare (failovers, expiries, abandoned control
/// messages), so the read-lock cost is irrelevant.
static WARNING_HOOK: std::sync::RwLock<Option<WarningHook>> = std::sync::RwLock::new(None);

/// Installs a process-wide hook invoked for every runtime warning
/// (datapath failover/failback, peer expiry and recovery, abandoned
/// control messages).  Replaces any previous hook.  The default is
/// silence: the middleware never writes to stderr on its own.
pub fn set_warning_hook<F: Fn(&str) + Send + Sync + 'static>(hook: F) {
    *WARNING_HOOK.write().unwrap_or_else(|e| e.into_inner()) = Some(std::sync::Arc::new(hook));
}

/// Removes the warning hook installed by [`set_warning_hook`].
pub fn clear_warning_hook() {
    *WARNING_HOOK.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Emits one warning through the installed hook, if any.
pub(crate) fn warn(msg: &str) {
    let hook = WARNING_HOOK
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(hook) = hook {
        hook(msg);
    }
}

/// Process-wide monotonic timestamp in nanoseconds, the clock behind
/// every [`stats::MessageMeta`] field.  All simulated hosts share one
/// process, so one clock is exact; applications use this to relate their
/// own measurements to message timestamps (e.g. per-frame latency in the
/// Lunar streaming framework).
pub fn timestamp_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

pub(crate) use timestamp_ns as epoch_ns;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_offset_reserves_all_headers() {
        assert_eq!(INSANE_HDR_OFFSET, 42);
        assert_eq!(PAYLOAD_OFFSET, 82);
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = epoch_ns();
        let b = epoch_ns();
        assert!(b >= a);
    }

    #[test]
    fn channel_display() {
        assert_eq!(ChannelId(9).to_string(), "channel#9");
    }
}
