//! Datapath plugins — one per network acceleration technology (§5.3).
//!
//! Each plugin adapts the runtime's uniform send/receive contract to one
//! device's native API.  Framing is part of the contract: the plugin
//! writes whatever headers its technology needs *in place* into the
//! message slot (the packet processing engine runs for DPDK and XDP;
//! kernel UDP relies on the kernel's stack; RDMA offloads framing to the
//! NIC), and parses/validates them on receive.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use insane_fabric::devices::{DpdkPort, RdmaNic, RecvMode, SimUdpSocket, XdpSocket};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId, Payload, Technology};
use insane_memory::SlotView;
use insane_netstack::ether::MacAddr;
use insane_netstack::insane_hdr::{checksum_ok, seal, InsaneHeader};
use insane_netstack::ipv4::Ipv4Header;
use insane_netstack::packet::{PacketBuilder, PacketView};
use insane_queues::SnapshotCell;
use parking_lot::Mutex;

use crate::runtime::internals::PayloadStore;
use crate::stats::RuntimeStats;
use crate::{epoch_ns, InsaneError, INSANE_HDR_OFFSET, PAYLOAD_OFFSET};

/// Offset of the port number of each technology relative to the
/// runtime's `port_base`.
pub(crate) fn tech_port_offset(tech: Technology) -> u16 {
    match tech {
        Technology::KernelUdp => 0,
        Technology::Xdp => 1,
        Technology::Dpdk => 2,
        Technology::Rdma => 3, // listening convention; QPs use base+16+peer
    }
}

/// A message received by a plugin, ready for dispatch.
#[derive(Debug)]
pub(crate) struct InboundMsg {
    pub store: PayloadStore,
    pub hdr: InsaneHeader,
    /// Payload offset within `store.bytes()`.
    pub payload_offset: usize,
    /// Wire time reported by the device.
    pub wire_ns: u64,
    /// Epoch timestamp at which the plugin popped the frame.
    pub received_ns: u64,
}

/// One framed message bound for one destination host.
#[derive(Debug)]
pub(crate) struct WireMsg {
    pub view: SlotView,
    /// First byte the device transmits (`0` for devices that send the
    /// whole slot, [`INSANE_HDR_OFFSET`] for the kernel path, which would
    /// otherwise copy dead headroom).
    pub wire_start: usize,
    pub dst: HostId,
}

/// The uniform plugin contract.
pub(crate) trait DatapathPlugin: Send + Sync + fmt::Debug {
    /// Technology this plugin drives.
    fn technology(&self) -> Technology;

    /// Largest application payload one message may carry.
    fn max_payload(&self) -> usize;

    /// Writes this technology's headers into `slot`
    /// (`slot[..PAYLOAD_OFFSET]` is reserved headroom; the payload is
    /// already resident at `PAYLOAD_OFFSET..PAYLOAD_OFFSET+payload_len`).
    /// Returns the byte offset the device should start transmitting at.
    fn frame(
        &self,
        slot: &mut [u8],
        hdr: &InsaneHeader,
        payload_len: usize,
        dst: HostId,
    ) -> Result<usize, InsaneError>;

    /// Sends a burst of framed messages, draining `msgs`; returns how
    /// many were accepted.  Unreachable destinations are dropped silently
    /// (datagram semantics), other errors abort the burst.  The buffer is
    /// caller-owned scratch so the hot path can reuse it.
    fn send_burst(&self, msgs: &mut Vec<WireMsg>) -> Result<usize, InsaneError>;

    /// Polls for received messages; appends up to `max` to `out`.
    fn poll_rx(&self, out: &mut Vec<InboundMsg>, max: usize) -> usize;

    /// Called when the runtime learns of a new peer.  Connection-oriented
    /// technologies set up their endpoints here (RDMA opens the queue
    /// pair toward the peer so two-sided receives can be posted before
    /// any local send happens).
    fn on_peer(&self, _peer: HostId) {}
}

fn parse_insane(bytes: &[u8], at: usize) -> Option<InsaneHeader> {
    InsaneHeader::parse(bytes.get(at..)?).ok()
}

fn store_of(payload: Payload) -> (PayloadStore, usize) {
    match payload {
        Payload::Pooled(view) => {
            let len = view.len();
            (PayloadStore::View(Arc::new(view)), len)
        }
        Payload::Inline(bytes) => {
            let len = bytes.len();
            (PayloadStore::Shared(Arc::from(bytes)), len)
        }
    }
}

// ---------------------------------------------------------------------
// Kernel UDP
// ---------------------------------------------------------------------

/// Kernel UDP datapath: the "slow"/fallback path (§5.2).
pub(crate) struct UdpPlugin {
    socket: SimUdpSocket,
    port: u16,
    stats: Arc<RuntimeStats>,
}

impl fmt::Debug for UdpPlugin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UdpPlugin")
            .field("port", &self.port)
            .finish()
    }
}

impl UdpPlugin {
    pub(crate) fn new(
        fabric: &Fabric,
        host: HostId,
        port: u16,
        stats: Arc<RuntimeStats>,
    ) -> Result<Self, InsaneError> {
        let socket = SimUdpSocket::bind(fabric, host, port)?;
        // The paper enables jumbo frames for the big-payload experiments.
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        Ok(Self {
            socket,
            port,
            stats,
        })
    }
}

impl DatapathPlugin for UdpPlugin {
    fn technology(&self) -> Technology {
        Technology::KernelUdp
    }

    fn max_payload(&self) -> usize {
        // The datagram carries [InsaneHeader][payload].
        SimUdpSocket::JUMBO_MTU - insane_netstack::insane_hdr::HEADER_LEN
    }

    fn frame(
        &self,
        slot: &mut [u8],
        hdr: &InsaneHeader,
        payload_len: usize,
        _dst: HostId,
    ) -> Result<usize, InsaneError> {
        hdr.write(&mut slot[INSANE_HDR_OFFSET..])?;
        seal(&mut slot[INSANE_HDR_OFFSET..PAYLOAD_OFFSET + payload_len])?;
        Ok(INSANE_HDR_OFFSET)
    }

    fn send_burst(&self, msgs: &mut Vec<WireMsg>) -> Result<usize, InsaneError> {
        let mut sent = 0;
        for msg in msgs.drain(..) {
            let dst = Endpoint {
                host: msg.dst,
                port: self.port,
            };
            match self.socket.send_to(&msg.view[msg.wire_start..], dst) {
                Ok(()) => sent += 1,
                Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(sent)
    }

    fn poll_rx(&self, out: &mut Vec<InboundMsg>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.socket.recv(RecvMode::NonBlocking) {
                Ok(datagram) => {
                    let received_ns = epoch_ns();
                    let hdr = parse_insane(&datagram.payload, 0)
                        .filter(|_| checksum_ok(&datagram.payload));
                    let Some(hdr) = hdr else {
                        // Not an INSANE message, or corrupted in flight.
                        self.stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    out.push(InboundMsg {
                        store: PayloadStore::Shared(Arc::from(datagram.payload.into_boxed_slice())),
                        hdr,
                        payload_offset: insane_netstack::insane_hdr::HEADER_LEN,
                        wire_ns: datagram.wire_ns,
                        received_ns,
                    });
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }
}

// ---------------------------------------------------------------------
// DPDK
// ---------------------------------------------------------------------

/// DPDK datapath: the "fast" path when RDMA hardware is absent (§5.2).
pub(crate) struct DpdkPlugin {
    port: DpdkPort,
    host: HostId,
    udp_port: u16,
    stats: Arc<RuntimeStats>,
}

impl fmt::Debug for DpdkPlugin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DpdkPlugin")
            .field("endpoint", &self.port.local_addr())
            .finish()
    }
}

impl DpdkPlugin {
    pub(crate) fn new(
        fabric: &Fabric,
        host: HostId,
        port: u16,
        stats: Arc<RuntimeStats>,
    ) -> Result<Self, InsaneError> {
        // The device mempool backs raw-DPDK use; the runtime sends from
        // its own pools, so a small one suffices.
        let dpdk = DpdkPort::open(fabric, host, port, 64)?;
        Ok(Self {
            port: dpdk,
            host,
            udp_port: port,
            stats,
        })
    }

    fn builder(&self, dst: HostId) -> PacketBuilder {
        PacketBuilder::new()
            .src_mac(MacAddr::from_host_index(self.host.index()))
            .dst_mac(MacAddr::from_host_index(dst.index()))
            .src(Ipv4Header::addr_for_host(self.host.index()), self.udp_port)
            .dst(Ipv4Header::addr_for_host(dst.index()), self.udp_port)
    }
}

impl DatapathPlugin for DpdkPlugin {
    fn technology(&self) -> Technology {
        Technology::Dpdk
    }

    fn max_payload(&self) -> usize {
        self.port.mtu() - PAYLOAD_OFFSET
    }

    fn frame(
        &self,
        slot: &mut [u8],
        hdr: &InsaneHeader,
        payload_len: usize,
        dst: HostId,
    ) -> Result<usize, InsaneError> {
        // The packet processing engine: userspace Ethernet/IPv4/UDP
        // framing around [InsaneHeader][payload], all in place.  Sealing
        // precedes the transport framing so the UDP checksum covers the
        // sealed INSANE bytes.
        hdr.write(&mut slot[INSANE_HDR_OFFSET..])?;
        seal(&mut slot[INSANE_HDR_OFFSET..PAYLOAD_OFFSET + payload_len])?;
        self.builder(dst)
            .finish_in_place(slot, insane_netstack::insane_hdr::HEADER_LEN + payload_len)?;
        Ok(0)
    }

    fn send_burst(&self, msgs: &mut Vec<WireMsg>) -> Result<usize, InsaneError> {
        // Group by destination so each group is one burst (opportunistic
        // batching, §6.2: send what is ready, never wait to fill a
        // batch).  The common case — every message toward one host — is
        // allocation-free.
        let mut sent = 0;
        while !msgs.is_empty() {
            let dst = msgs[0].dst;
            let endpoint = Endpoint {
                host: dst,
                port: self.udp_port,
            };
            if msgs.iter().all(|m| m.dst == dst) {
                let batch = msgs.drain(..).map(|m| m.view);
                match self.port.tx_burst_views(endpoint, batch) {
                    Ok(n) => sent += n,
                    Err(FabricError::Unreachable(_)) => {}
                    Err(e) => return Err(e.into()),
                }
                break;
            }
            let mut batch = Vec::new();
            let mut rest = Vec::new();
            for m in msgs.drain(..) {
                if m.dst == dst {
                    batch.push(m.view);
                } else {
                    rest.push(m);
                }
            }
            *msgs = rest;
            match self.port.tx_burst_views(endpoint, batch) {
                Ok(n) => sent += n,
                Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(sent)
    }

    fn poll_rx(&self, out: &mut Vec<InboundMsg>, max: usize) -> usize {
        let mut packets = Vec::new();
        self.port.rx_burst(&mut packets, max);
        let received_ns = epoch_ns();
        let mut n = 0;
        for pkt in packets {
            let wire_ns = pkt.wire_ns;
            let (store, _) = store_of(pkt.payload);
            // Validate the full frame through the userspace stack, then
            // the INSANE checksum behind the 42 transport bytes.
            let parsed = PacketView::parse(store.bytes()).ok().and_then(|view| {
                let insane = view.payload();
                if !checksum_ok(insane) {
                    return None;
                }
                InsaneHeader::parse(insane).ok()
            });
            let Some(hdr) = parsed else {
                self.stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            out.push(InboundMsg {
                store,
                hdr,
                payload_offset: PAYLOAD_OFFSET,
                wire_ns,
                received_ns,
            });
            n += 1;
        }
        n
    }
}

// ---------------------------------------------------------------------
// XDP
// ---------------------------------------------------------------------

/// AF_XDP datapath: accelerated but CPU-frugal (§5.2).
pub(crate) struct XdpPlugin {
    socket: XdpSocket,
    host: HostId,
    udp_port: u16,
    stats: Arc<RuntimeStats>,
}

impl fmt::Debug for XdpPlugin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XdpPlugin")
            .field("endpoint", &self.socket.local_addr())
            .finish()
    }
}

impl XdpPlugin {
    pub(crate) fn new(
        fabric: &Fabric,
        host: HostId,
        port: u16,
        stats: Arc<RuntimeStats>,
    ) -> Result<Self, InsaneError> {
        let socket = XdpSocket::open(fabric, host, port, 64)?;
        Ok(Self {
            socket,
            host,
            udp_port: port,
            stats,
        })
    }
}

impl DatapathPlugin for XdpPlugin {
    fn technology(&self) -> Technology {
        Technology::Xdp
    }

    fn max_payload(&self) -> usize {
        self.socket.mtu() - PAYLOAD_OFFSET
    }

    fn frame(
        &self,
        slot: &mut [u8],
        hdr: &InsaneHeader,
        payload_len: usize,
        dst: HostId,
    ) -> Result<usize, InsaneError> {
        hdr.write(&mut slot[INSANE_HDR_OFFSET..])?;
        seal(&mut slot[INSANE_HDR_OFFSET..PAYLOAD_OFFSET + payload_len])?;
        PacketBuilder::new()
            .src_mac(MacAddr::from_host_index(self.host.index()))
            .dst_mac(MacAddr::from_host_index(dst.index()))
            .src(Ipv4Header::addr_for_host(self.host.index()), self.udp_port)
            .dst(Ipv4Header::addr_for_host(dst.index()), self.udp_port)
            .finish_in_place(slot, insane_netstack::insane_hdr::HEADER_LEN + payload_len)?;
        Ok(0)
    }

    fn send_burst(&self, msgs: &mut Vec<WireMsg>) -> Result<usize, InsaneError> {
        let mut sent = 0;
        for msg in msgs.drain(..) {
            let dst = Endpoint {
                host: msg.dst,
                port: self.udp_port,
            };
            match self.socket.tx_view(dst, msg.view) {
                Ok(()) => sent += 1,
                Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(sent)
    }

    fn poll_rx(&self, out: &mut Vec<InboundMsg>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            let Some(desc) = self.socket.rx() else { break };
            let received_ns = epoch_ns();
            let wire_ns = desc.wire_ns;
            let (store, _) = store_of(desc.payload);
            let parsed = PacketView::parse(store.bytes()).ok().and_then(|view| {
                let insane = view.payload();
                if !checksum_ok(insane) {
                    return None;
                }
                InsaneHeader::parse(insane).ok()
            });
            let Some(hdr) = parsed else {
                self.stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            out.push(InboundMsg {
                store,
                hdr,
                payload_offset: PAYLOAD_OFFSET,
                wire_ns,
                received_ns,
            });
            n += 1;
        }
        n
    }
}

// ---------------------------------------------------------------------
// RDMA
// ---------------------------------------------------------------------

/// RDMA datapath: two-sided SEND/RECV over per-peer queue pairs.
///
/// QP ports follow a symmetric convention so peers can address each other
/// without negotiation: the QP a runtime opens *toward* peer host `P`
/// binds local port `qp_base + P` and connects to the peer's
/// `qp_base + self`.
pub(crate) struct RdmaPlugin {
    nic: RdmaNic,
    host: HostId,
    qp_base: u16,
    /// Peer → connected queue pair, published as an immutable snapshot:
    /// `poll_rx` runs on every polling shard and must read the table
    /// without locks or allocation (DESIGN.md §12).
    qps: SnapshotCell<Vec<(HostId, Arc<insane_fabric::devices::QueuePair>)>>,
    /// Serializes `qp_for`'s clone-mutate-publish connection setup.
    qp_write: Mutex<()>,
    recv_credit: Mutex<u64>,
    max_payload: usize,
    stats: Arc<RuntimeStats>,
}

impl fmt::Debug for RdmaPlugin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RdmaPlugin")
            .field("host", &self.host)
            .field("qps", &self.qps.load().len())
            .finish()
    }
}

impl RdmaPlugin {
    const RECV_DEPTH: u64 = 128;

    pub(crate) fn new(
        fabric: &Fabric,
        host: HostId,
        qp_base: u16,
        max_payload: usize,
        stats: Arc<RuntimeStats>,
    ) -> Result<Self, InsaneError> {
        Ok(Self {
            nic: RdmaNic::new(fabric, host),
            host,
            qp_base,
            qps: SnapshotCell::new(Vec::new()),
            qp_write: Mutex::new(()),
            recv_credit: Mutex::new(0),
            max_payload,
            stats,
        })
    }

    fn qp_for(&self, peer: HostId) -> Result<Arc<insane_fabric::devices::QueuePair>, InsaneError> {
        if let Some((_, qp)) = self.qps.load().iter().find(|(h, _)| *h == peer) {
            return Ok(Arc::clone(qp));
        }
        // Connection setup: serialize writers and re-check under the
        // writer lock, then publish the extended table as a new snapshot.
        let guard = self.qp_write.lock();
        if let Some((_, qp)) = self.qps.load().iter().find(|(h, _)| *h == peer) {
            return Ok(Arc::clone(qp));
        }
        let local_port = self.qp_base + peer.index() as u16;
        let qp = Arc::new(self.nic.create_qp(local_port)?);
        qp.connect(Endpoint {
            host: peer,
            port: self.qp_base + self.host.index() as u16,
        });
        for i in 0..Self::RECV_DEPTH {
            qp.post_recv(i);
        }
        *self.recv_credit.lock() += Self::RECV_DEPTH;
        let mut next = (*self.qps.load()).clone();
        next.push((peer, Arc::clone(&qp)));
        self.qps.publish(Arc::new(next));
        drop(guard);
        Ok(qp)
    }
}

impl DatapathPlugin for RdmaPlugin {
    fn technology(&self) -> Technology {
        Technology::Rdma
    }

    fn max_payload(&self) -> usize {
        self.max_payload
    }

    fn frame(
        &self,
        slot: &mut [u8],
        hdr: &InsaneHeader,
        payload_len: usize,
        _dst: HostId,
    ) -> Result<usize, InsaneError> {
        // The NIC does the wire protocol; only the INSANE header is ours.
        hdr.write(&mut slot[INSANE_HDR_OFFSET..])?;
        seal(&mut slot[INSANE_HDR_OFFSET..PAYLOAD_OFFSET + payload_len])?;
        Ok(0)
    }

    fn send_burst(&self, msgs: &mut Vec<WireMsg>) -> Result<usize, InsaneError> {
        let mut sent = 0;
        for msg in msgs.drain(..) {
            let qp = self.qp_for(msg.dst)?;
            match qp.post_send_view(msg.view, 0) {
                Ok(()) => sent += 1,
                Err(FabricError::Unreachable(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(sent)
    }

    fn on_peer(&self, peer: HostId) {
        let _ = self.qp_for(peer);
    }

    fn poll_rx(&self, out: &mut Vec<InboundMsg>, max: usize) -> usize {
        // One pinned snapshot load per poll call: no lock, and no more
        // per-call Vec clone of the queue-pair table.
        let qps = self.qps.load();
        let mut n = 0;
        let mut completions = Vec::new();
        for (_, qp) in qps.iter() {
            if n >= max {
                break;
            }
            completions.clear();
            qp.poll_cq(&mut completions, max - n);
            let received_ns = epoch_ns();
            for completion in completions.drain(..) {
                let Some(payload) = completion.payload else {
                    continue; // send completion
                };
                // Replenish the receive queue.
                qp.post_recv(completion.wr_id);
                let wire_ns = completion.wire_ns;
                let (store, _) = store_of(payload);
                let sealed_ok = store
                    .bytes()
                    .get(INSANE_HDR_OFFSET..)
                    .is_some_and(checksum_ok);
                let hdr = parse_insane(store.bytes(), INSANE_HDR_OFFSET).filter(|_| sealed_ok);
                let Some(hdr) = hdr else {
                    self.stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                out.push(InboundMsg {
                    store,
                    hdr,
                    payload_offset: PAYLOAD_OFFSET,
                    wire_ns,
                    received_ns,
                });
                n += 1;
            }
        }
        n
    }
}
