//! Hot-reloadable runtime tunables (DESIGN.md §12).
//!
//! The polling engine's pacing knobs — adaptive burst bounds and idle
//! backoff thresholds — are published through a
//! [`SnapshotCell`](insane_queues::SnapshotCell) on the runtime, so the
//! control plane can retune a live runtime without a restart and
//! without adding a single lock to the polling hot path: each shard
//! picks up a new snapshot with the one atomic `refresh` it already
//! pays per iteration.
//!
//! Reload paths: [`crate::Runtime::reload_tunables`] in-process, or the
//! introspection endpoint's `reload key=value ...` request (served by
//! `tools/insanectl reload`).

/// Pacing parameters of the polling engine, published as one immutable
/// snapshot (partial updates are expressed as clone-modify-publish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tunables {
    /// Lower bound of the adaptive burst controller: an idle shard's
    /// burst budget decays toward this floor, keeping the latency cost
    /// of a stale oversized burst bounded when traffic stops.
    pub burst_min: usize,
    /// Upper bound of the adaptive burst controller: a saturated
    /// shard's burst budget grows toward this ceiling, amortizing
    /// per-burst overheads (device doorbells, hop charges) under load.
    pub burst_max: usize,
    /// Idle polling iterations before a polling thread starts yielding
    /// its timeslice between polls.
    pub idle_yield_after: u32,
    /// Idle polling iterations before a polling thread starts sleeping
    /// between polls (§5.3: polling threads pause automatically when
    /// idle).
    pub idle_sleep_after: u32,
    /// Sleep length, in microseconds, once `idle_sleep_after` is
    /// exceeded.
    pub idle_sleep_us: u64,
    /// Guard band, in nanoseconds, re-armed on every time-aware shard
    /// scheduler at reload.  `None` (the default) leaves whatever the
    /// [`SchedulerChoice`](crate::SchedulerChoice) configured; FIFO
    /// shards accept and ignore the knob.
    pub tas_guard_band_ns: Option<u64>,
    /// Uniform per-frame transmission time, in nanoseconds, re-armed on
    /// every time-aware shard scheduler at reload.  `None` (the
    /// default) leaves the configured value.
    pub tas_frame_tx_ns: Option<u64>,
}

impl Default for Tunables {
    fn default() -> Self {
        Self {
            burst_min: 4,
            burst_max: 32,
            idle_yield_after: 32,
            idle_sleep_after: 256,
            idle_sleep_us: 100,
            tas_guard_band_ns: None,
            tas_frame_tx_ns: None,
        }
    }
}

impl Tunables {
    /// The tunables derived from a burst budget: `burst` is both the
    /// starting burst and the adaptive ceiling (so a freshly started
    /// runtime behaves exactly like the fixed-burst engine under
    /// saturation), with the floor an eighth of it.  The runtime seeds
    /// itself with `for_burst(config.burst)`.
    pub fn for_burst(burst: usize) -> Self {
        Self {
            burst_min: (burst / 8).max(1),
            burst_max: burst.max(1),
            ..Self::default()
        }
    }

    /// Checks internal consistency; every reload path calls this before
    /// publishing.
    pub fn validate(&self) -> Result<(), String> {
        if self.burst_min == 0 {
            return Err("burst_min must be at least 1".into());
        }
        if self.burst_min > self.burst_max {
            return Err(format!(
                "burst_min ({}) exceeds burst_max ({})",
                self.burst_min, self.burst_max
            ));
        }
        if self.burst_max > 4096 {
            return Err("burst_max must be at most 4096".into());
        }
        if self.idle_yield_after > self.idle_sleep_after {
            return Err(format!(
                "idle_yield_after ({}) exceeds idle_sleep_after ({})",
                self.idle_yield_after, self.idle_sleep_after
            ));
        }
        // Coarse sanity caps; the per-scheduler check (guard band vs.
        // the live gate cycle) runs when the value is applied.
        if self.tas_guard_band_ns.is_some_and(|ns| ns > 1_000_000_000) {
            return Err("tas_guard_band_ns must be at most 1s".into());
        }
        if self.tas_frame_tx_ns.is_some_and(|ns| ns > 1_000_000_000) {
            return Err("tas_frame_tx_ns must be at most 1s".into());
        }
        Ok(())
    }

    /// Applies one `key=value` assignment (the introspection endpoint's
    /// `reload` request format).  Unknown keys and unparsable values are
    /// rejected; validation runs separately once every pair is applied.
    pub fn apply_kv(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("invalid value {value:?} for {key}"))
        }
        match key {
            "burst_min" => self.burst_min = parse(key, value)?,
            "burst_max" => self.burst_max = parse(key, value)?,
            "idle_yield_after" => self.idle_yield_after = parse(key, value)?,
            "idle_sleep_after" => self.idle_sleep_after = parse(key, value)?,
            "idle_sleep_us" => self.idle_sleep_us = parse(key, value)?,
            "tas_guard_band_ns" => self.tas_guard_band_ns = Some(parse(key, value)?),
            "tas_frame_tx_ns" => self.tas_frame_tx_ns = Some(parse(key, value)?),
            _ => return Err(format!("unknown tunable {key:?}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_burst_brackets_the_configured_burst() {
        let t = Tunables::for_burst(32);
        assert_eq!(t.burst_min, 4);
        assert_eq!(t.burst_max, 32);
        assert!(t.validate().is_ok());
        let tiny = Tunables::for_burst(1);
        assert_eq!(tiny.burst_min, 1);
        assert_eq!(tiny.burst_max, 1);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let inverted = Tunables {
            burst_min: 64,
            burst_max: 8,
            ..Tunables::default()
        };
        assert!(inverted.validate().is_err());
        let zero_min = Tunables {
            burst_min: 0,
            ..Tunables::default()
        };
        assert!(zero_min.validate().is_err());
        let yield_after_sleep = Tunables {
            idle_yield_after: 1_000,
            ..Tunables::default()
        };
        assert!(yield_after_sleep.validate().is_err());
    }

    #[test]
    fn apply_kv_round_trips_every_key() {
        let mut t = Tunables::default();
        for (k, v) in [
            ("burst_min", "2"),
            ("burst_max", "128"),
            ("idle_yield_after", "16"),
            ("idle_sleep_after", "512"),
            ("idle_sleep_us", "50"),
            ("tas_guard_band_ns", "20000"),
            ("tas_frame_tx_ns", "2000"),
        ] {
            t.apply_kv(k, v).unwrap();
        }
        assert_eq!(
            t,
            Tunables {
                burst_min: 2,
                burst_max: 128,
                idle_yield_after: 16,
                idle_sleep_after: 512,
                idle_sleep_us: 50,
                tas_guard_band_ns: Some(20_000),
                tas_frame_tx_ns: Some(2_000),
            }
        );
        assert!(t.apply_kv("bogus", "1").is_err());
        assert!(t.apply_kv("burst_min", "not-a-number").is_err());
    }

    #[test]
    fn validate_caps_tas_knobs() {
        let absurd = Tunables {
            tas_guard_band_ns: Some(2_000_000_000),
            ..Tunables::default()
        };
        assert!(absurd.validate().is_err());
        let sane = Tunables {
            tas_guard_band_ns: Some(20_000),
            tas_frame_tx_ns: Some(2_000),
            ..Tunables::default()
        };
        assert!(sane.validate().is_ok());
    }
}
