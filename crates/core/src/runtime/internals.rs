//! Shared state between the client library and the runtime.
//!
//! These are the in-process equivalents of the paper's shared-memory
//! structures: token queues (Fig. 4), per-stream bookkeeping, and the
//! per-sink delivery queues.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use insane_memory::{SlotToken, SlotView};
use insane_queues::MpmcQueue;
use insane_tsn::TrafficClass;
use parking_lot::{Condvar, Mutex};

use crate::qos::{MappedPath, QosPolicy};
use crate::stats::MessageMeta;
use crate::EmitOutcome;

/// One emitted message travelling from the library to the runtime
/// (the TX token of Fig. 4).
#[derive(Debug)]
pub(crate) struct TxRequest {
    /// Slot containing `[headroom][payload]`; length covers both.
    pub token: SlotToken,
    /// Application payload length (slot length minus headroom).
    pub payload_len: usize,
    /// Channel the message travels on.
    pub channel: u32,
    /// Tenant of the emitting session (cross-tenant fair queueing).
    pub tenant: insane_memory::TenantId,
    /// Scheduler class derived from the stream's time-sensitivity QoS.
    pub class: TrafficClass,
    /// Per-stream sequence number.
    pub seq: u64,
    /// Epoch timestamp of the emit call (latency breakdown).
    pub emit_ns: u64,
    /// App-level fragmentation metadata
    /// `(index, count, total_len, message_id)` — `message_id` becomes the
    /// wire sequence for every fragment of one message so the consumer
    /// can reassemble.
    pub frag: Option<(u16, u16, u32, u64)>,
    /// Outcome board of the emitting source.
    pub outcome: Arc<OutcomeBoard>,
}

/// Where delivered payload bytes live.
#[derive(Debug, Clone)]
pub(crate) enum PayloadStore {
    /// Zero-copy view into a slot pool (possibly on the "remote" host —
    /// the fabric models DMA delivery).
    View(Arc<SlotView>),
    /// Shared owned bytes (kernel datapath, which copies anyway).
    Shared(Arc<[u8]>),
}

impl PayloadStore {
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            PayloadStore::View(v) => v,
            PayloadStore::Shared(b) => b,
        }
    }
}

/// One message queued for a sink.
#[derive(Debug)]
pub(crate) struct Delivery {
    pub store: PayloadStore,
    /// Payload range within `store.bytes()`.
    pub offset: usize,
    pub len: usize,
    pub meta: MessageMeta,
}

/// Per-source emit-outcome accounting (`check_emit_outcome` support).
#[derive(Debug, Default)]
pub(crate) struct OutcomeBoard {
    /// Sequence numbers emitted so far (next seq to assign).
    pub emitted: AtomicU64,
    /// All sequences strictly below this value were handed to a datapath
    /// or delivered locally.
    pub completed_below: AtomicU64,
    /// Failed sequences with reasons (rare path).
    pub failures: Mutex<Vec<(u64, &'static str)>>,
}

impl OutcomeBoard {
    pub(crate) fn outcome_of(&self, seq: u64) -> EmitOutcome {
        if self
            .failures
            .lock()
            .iter()
            .any(|(failed_seq, _)| *failed_seq == seq)
        {
            return EmitOutcome::Failed;
        }
        if seq < self.completed_below.load(Ordering::Acquire) {
            EmitOutcome::Completed
        } else {
            EmitOutcome::Pending
        }
    }

    pub(crate) fn complete_through(&self, seq: u64) {
        // Monotonic max of seq+1.
        self.completed_below.fetch_max(seq + 1, Ordering::AcqRel);
    }

    // insane-lint: allow-fn(hot-path-block) -- failure path, not steady state; the lock is uncontended outside error storms
    // insane-lint: allow-fn(hot-path-alloc) -- failure path; the record list is capped at 1024 entries
    pub(crate) fn fail(&self, seq: u64, reason: &'static str) {
        let mut failures = self.failures.lock();
        if failures.len() < 1024 {
            failures.push((seq, reason));
        }
        self.complete_through(seq);
    }
}

/// Shared state of one stream.
#[derive(Debug)]
pub(crate) struct StreamShared {
    /// Stream identifier: diagnostics, and the key of the stable
    /// stream→shard assignment.
    pub id: u64,
    pub qos: QosPolicy,
    pub mapped: MappedPath,
    /// Tenant of the session that opened the stream: the accounting
    /// identity of every buffer it lends and message it emits.
    pub tenant: insane_memory::TenantId,
    /// Library → runtime token queue.
    pub tx: MpmcQueue<TxRequest>,
    pub seq: AtomicU64,
    pub closed: AtomicBool,
}

impl StreamShared {
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }
}

/// Callback type for callback sinks (receives each message as it lands).
pub(crate) type SinkCallback = Box<dyn Fn(crate::IncomingMessage) + Send + Sync>;

/// Shared state of one sink.
pub(crate) struct SinkShared {
    pub id: u64,
    pub channel: u32,
    /// Runtime → sink delivery queue (the RX token queue of Fig. 4).
    /// Deliveries are shared: fanning one message out to many sinks
    /// clones a pointer, not the descriptor.
    pub queue: MpmcQueue<Arc<Delivery>>,
    pub wake_lock: Mutex<()>,
    pub wake: Condvar,
    pub callback: Option<SinkCallback>,
    pub closed: AtomicBool,
    pub received: AtomicU64,
    pub dropped: AtomicU64,
    /// Per-stream telemetry recorder handle (inert when disabled).
    pub telemetry: crate::telemetry::SinkTel,
}

impl std::fmt::Debug for SinkShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkShared")
            .field("id", &self.id)
            .field("channel", &self.channel)
            .field("queued", &self.queue.len())
            .field("received", &self.received.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .field("callback", &self.callback.is_some())
            .finish()
    }
}

impl SinkShared {
    /// Delivers one message, invoking the callback inline or queueing.
    /// Returns false when the message was dropped (queue full / closed).
    // insane-lint: allow-fn(hot-path-alloc) -- the sink queue is a fixed-capacity MPMC ring; push never allocates
    pub(crate) fn deliver(&self, delivery: Arc<Delivery>) -> bool {
        if self.closed.load(Ordering::Acquire) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if let Some(cb) = &self.callback {
            self.received.fetch_add(1, Ordering::Relaxed);
            cb(crate::api::incoming_from_delivery(
                delivery,
                &self.telemetry,
            ));
            return true;
        }
        match self.queue.push(delivery) {
            Ok(()) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                self.wake.notify_one();
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake.notify_all();
    }
}

/// Registry of all streams attached to a runtime, grouped for the polling
/// threads.
///
/// The stream list is read-mostly (registration and pruning are
/// session-lifecycle events), so it is published through a
/// [`SnapshotCell`]: writers clone-and-publish, the polling hot path
/// reads an immutable snapshot with zero lock acquisitions.  The version
/// counter lets polling threads keep a per-datapath filtered snapshot
/// and only rebuild it when a stream was added or removed.
#[derive(Debug)]
pub(crate) struct StreamRegistry {
    streams: insane_queues::SnapshotCell<Vec<Arc<StreamShared>>>,
    /// Serializes clone-mutate-publish writers.
    write: Mutex<()>,
    version: AtomicU64,
}

impl Default for StreamRegistry {
    fn default() -> Self {
        Self {
            streams: insane_queues::SnapshotCell::new(Vec::new()),
            write: Mutex::new(()),
            version: AtomicU64::new(0),
        }
    }
}

impl StreamRegistry {
    pub(crate) fn register(&self, stream: Arc<StreamShared>) {
        let guard = self.write.lock();
        let mut next = (*self.streams.load()).clone();
        next.push(stream);
        self.streams.publish(Arc::new(next));
        drop(guard);
        self.version.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn prune_closed(&self) {
        let guard = self.write.lock();
        let mut next = (*self.streams.load()).clone();
        next.retain(|s| !s.closed.load(Ordering::Acquire));
        self.streams.publish(Arc::new(next));
        drop(guard);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Current registry version (bumped on register/prune).
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Rebuilds `out` with the open streams mapped to `tech` that shard
    /// `shard` (of `shards`) owns.  Ownership comes from the stable
    /// stream-id hash, so every stream lands in exactly one shard's
    /// snapshot (see [`crate::runtime::shard::shard_of_stream`]).
    /// Called only when the version counter says the registry changed;
    /// reads the published snapshot without taking any lock.
    pub(crate) fn snapshot_for(
        &self,
        tech: insane_fabric::Technology,
        shard: usize,
        shards: usize,
        out: &mut Vec<Arc<StreamShared>>,
    ) {
        out.clear();
        out.extend(
            self.streams
                .load()
                .iter()
                .filter(|s| {
                    s.mapped.technology == tech
                        && !s.closed.load(Ordering::Acquire)
                        && crate::runtime::shard::shard_of_stream(s.id, shards) == shard
                })
                .cloned(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmitOutcome;

    #[test]
    fn outcome_board_lifecycle() {
        let board = OutcomeBoard::default();
        assert_eq!(board.outcome_of(0), EmitOutcome::Pending);
        board.complete_through(0);
        assert_eq!(board.outcome_of(0), EmitOutcome::Completed);
        assert_eq!(board.outcome_of(1), EmitOutcome::Pending);
        // Completion is monotonic: completing 5 covers 1..=5.
        board.complete_through(5);
        for seq in 0..=5 {
            assert_eq!(board.outcome_of(seq), EmitOutcome::Completed);
        }
        // A lower completion cannot regress the high-water mark.
        board.complete_through(2);
        assert_eq!(board.outcome_of(5), EmitOutcome::Completed);
    }

    #[test]
    fn outcome_board_failures_stick() {
        let board = OutcomeBoard::default();
        board.fail(3, "framing failure");
        assert_eq!(board.outcome_of(3), EmitOutcome::Failed);
        // A failure also advances completion for ordering purposes, but
        // the failed sequence keeps reporting Failed.
        assert_eq!(board.outcome_of(2), EmitOutcome::Completed);
        board.complete_through(10);
        assert_eq!(board.outcome_of(3), EmitOutcome::Failed);
    }

    #[test]
    fn stream_sequences_are_dense() {
        let stream = StreamShared {
            id: 1,
            qos: crate::QosPolicy::default(),
            mapped: crate::qos::MappedPath {
                technology: insane_fabric::Technology::KernelUdp,
                fallback: false,
            },
            tenant: insane_memory::DEFAULT_TENANT,
            tx: MpmcQueue::new(4),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        };
        assert_eq!(stream.next_seq(), 0);
        assert_eq!(stream.next_seq(), 1);
        assert_eq!(stream.next_seq(), 2);
    }

    #[test]
    fn closed_sink_drops_and_counts() {
        let sink = SinkShared {
            id: 1,
            channel: 9,
            queue: MpmcQueue::new(4),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            callback: None,
            closed: AtomicBool::new(false),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            telemetry: crate::telemetry::SinkTel::none(),
        };
        sink.close();
        let delivery = Arc::new(Delivery {
            store: PayloadStore::Shared(Arc::from(vec![1u8, 2].into_boxed_slice())),
            offset: 0,
            len: 2,
            meta: crate::stats::MessageMeta {
                channel: 9,
                seq: 0,
                src_runtime: 0,
                frag: (0, 1, 2),
                emit_ns: 0,
                wire_start_ns: 0,
                wire_ns: 0,
                dispatched_ns: 0,
            },
        });
        assert!(!sink.deliver(delivery));
        assert_eq!(sink.dropped.load(Ordering::Relaxed), 1);
        assert_eq!(sink.received.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn registry_versions_track_mutations() {
        let registry = StreamRegistry::default();
        let v0 = registry.version();
        registry.register(Arc::new(StreamShared {
            id: 1,
            qos: crate::QosPolicy::default(),
            mapped: crate::qos::MappedPath {
                technology: insane_fabric::Technology::KernelUdp,
                fallback: false,
            },
            tenant: insane_memory::DEFAULT_TENANT,
            tx: MpmcQueue::new(4),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }));
        let v1 = registry.version();
        assert_ne!(v0, v1);
        let mut snapshot = Vec::new();
        registry.snapshot_for(insane_fabric::Technology::KernelUdp, 0, 1, &mut snapshot);
        assert_eq!(snapshot.len(), 1);
        registry.snapshot_for(insane_fabric::Technology::Dpdk, 0, 1, &mut snapshot);
        assert_eq!(snapshot.len(), 0, "snapshot filters by technology");
        // With two shards, exactly one of them owns the stream.
        let mut owned = 0;
        for shard in 0..2 {
            registry.snapshot_for(
                insane_fabric::Technology::KernelUdp,
                shard,
                2,
                &mut snapshot,
            );
            owned += snapshot.len();
        }
        assert_eq!(owned, 1, "each stream belongs to exactly one shard");
        registry.prune_closed();
        assert_ne!(registry.version(), v1);
    }
}
