//! Stable shard assignment for the sharded polling engine (DESIGN.md §9).
//!
//! A datapath driven by N shards splits its work deterministically:
//!
//! * **TX** — each stream is pinned to one shard by a stable hash of its
//!   stream id.  All messages of a stream (every channel it produces on)
//!   drain through that one shard's scheduler, so per-stream ordering is
//!   exactly what a single polling thread would deliver.
//! * **RX** — each channel is owned by one shard by a stable hash of the
//!   channel id.  Inbound messages fan out to the owning shard's inbox,
//!   and only the owner dispatches them, preserving per-channel arrival
//!   order.
//!
//! The hash is FNV-1a over the little-endian key bytes: stable across
//! runs, processes, and hosts (both ends of a deployment must agree on
//! nothing here — assignment is a host-local concern — but determinism
//! makes tests and failover reasoning tractable).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the little-endian bytes of `key`.
fn fnv1a(key: u64) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in key.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The shard (of `shards`) that owns a stream's TX queue.
///
/// Returns 0 when `shards <= 1` (the unsharded fast path).
pub fn shard_of_stream(stream_id: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // insane-lint: allow(hot-path-panic) -- divisor is > 1 on this branch
    (fnv1a(stream_id) % shards as u64) as usize
}

/// The shard (of `shards`) that owns a channel's inbound dispatch.
///
/// Returns 0 when `shards <= 1` (the unsharded fast path).
pub fn shard_of_channel(channel: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Offset the key space so a channel and a stream with the same
    // numeric id do not trivially collide onto the same shard.
    // insane-lint: allow(hot-path-panic) -- divisor is > 1 on this branch
    (fnv1a(u64::from(channel) | (1 << 63)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_maps_everything_to_zero() {
        for id in 0..64u64 {
            assert_eq!(shard_of_stream(id, 1), 0);
            assert_eq!(shard_of_channel(id as u32, 0), 0);
        }
    }

    #[test]
    fn assignment_is_stable_and_in_range() {
        for shards in [2usize, 3, 4, 8] {
            for id in 0..256u64 {
                let s = shard_of_stream(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_stream(id, shards), "stable across calls");
                let c = shard_of_channel(id as u32, shards);
                assert!(c < shards);
                assert_eq!(c, shard_of_channel(id as u32, shards));
            }
        }
    }

    #[test]
    fn assignment_spreads_across_shards() {
        // Not a uniformity proof — just a guard against a degenerate
        // hash that pins everything to one shard.
        for shards in [2usize, 4] {
            let mut hit = vec![false; shards];
            for id in 0..64u64 {
                hit[shard_of_stream(id, shards)] = true;
                hit[shard_of_channel(id as u32, shards)] = true;
            }
            assert!(hit.iter().all(|h| *h), "{shards} shards all reachable");
        }
    }
}
