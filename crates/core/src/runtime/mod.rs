//! The INSANE runtime: memory manager, packet scheduler, polling threads,
//! and datapath plugins (§5.3, Fig. 3).
//!
//! One runtime serves every application on its host.  Applications attach
//! through [`crate::Session`]; emitted messages travel as slot ids over
//! lock-free queues; the polling threads move them through the scheduler
//! onto the datapath mapped by each stream's QoS, and dispatch incoming
//! messages to the subscribed sinks — co-located sinks directly through
//! shared memory, without touching any network device.

pub(crate) mod dispatch;
pub(crate) mod internals;
pub(crate) mod plugins;
pub mod shard;
pub mod tunables;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use insane_fabric::{Endpoint, Fabric, HostId, Technology};
use insane_memory::{PoolSet, PoolSetBuilder, SlotView, TenantId, TenantQuota};
use insane_netstack::insane_hdr::{InsaneHeader, MessageKind};
use insane_queues::SnapshotCell;
use insane_tsn::{FifoScheduler, GateControlList, Scheduler, TasScheduler, TrafficClass};
use parking_lot::Mutex;

use crate::admission::{AdmissionController, OverloadPolicy, TenantRate};
use crate::qos::{DefaultMapping, MappedPath, MappingStrategy, QosPolicy};
use crate::runtime::dispatch::{
    decode_control, encode_control, mask_supports, tech_mask, ControlOp, Dispatcher, RoutingTable,
};
use crate::runtime::internals::{
    Delivery, OutcomeBoard, PayloadStore, SinkShared, StreamRegistry, StreamShared, TxRequest,
};
use crate::runtime::plugins::{
    tech_port_offset, DatapathPlugin, DpdkPlugin, InboundMsg, RdmaPlugin, UdpPlugin, WireMsg,
    XdpPlugin,
};
use crate::runtime::tunables::Tunables;
use crate::stats::{MessageMeta, RuntimeStats, StatsSnapshot};
use crate::telemetry::{DatapathTel, RuntimeTelemetry, SinkTel, TelemetryConfig};
use crate::tenant_drr::{TenantDrr, Tenanted};
use crate::{epoch_ns, InsaneError, PAYLOAD_OFFSET};

/// How the runtime's polling work is executed (§5.3: "the number of these
/// threads and their mapping to the datapath plugins is flexible and
/// configurable").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ThreadingMode {
    /// One polling thread per datapath plugin — the configuration the
    /// paper evaluates.
    #[default]
    PerDatapath,
    /// A single polling thread serving every plugin: lowest resource
    /// usage, lower performance (the paper's resource-frugal option).
    Shared,
    /// Explicit thread→datapath assignment: each inner list becomes one
    /// polling thread serving those technologies, in order (§5.3's
    /// "depending on the user needs in terms of performance, scalability,
    /// and resource consumption").  Technologies not mentioned anywhere
    /// are folded into the first thread.
    Custom(Vec<Vec<Technology>>),
    /// No threads: the caller drives [`Runtime::poll_once`] explicitly.
    /// Used by the single-core benchmark harness, where the serial
    /// critical path is driven inline.
    Manual,
}

/// Packet-scheduler selection (§5.2's time-sensitivity policy decides
/// per-message classes; this picks the strategy implementation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SchedulerChoice {
    /// FIFO: packets leave as soon as they are emitted (default).
    #[default]
    Fifo,
    /// IEEE 802.1Qbv time-aware shaping with an exclusive window for the
    /// time-critical class at the start of each cycle.
    TimeAware {
        /// Length of the exclusive time-critical window.
        critical_window: Duration,
        /// Gate cycle period.
        cycle: Duration,
        /// Guard interval before each gate-closing boundary during
        /// which no new frame may start (zero disables it).  Keeps an
        /// in-flight lower-class frame from spilling into the critical
        /// window.  Hot-reloadable via the `tas_guard_band_ns` tunable.
        guard_band: Duration,
        /// Modeled wire time of one frame, applied uniformly to every
        /// class (zero disables deadline metering).  With it set, the
        /// scheduler never releases a frame that cannot finish before
        /// its gate closes, and the polling engine clamps its drain
        /// burst to the remaining window.  Hot-reloadable via the
        /// `tas_frame_tx_ns` tunable.
        frame_tx: Duration,
    },
}

/// Self-healing control-plane parameters: announcement retransmission
/// and the heartbeat failure detector.
///
/// Announcements (Hello, Subscribe) are retransmitted with exponential
/// backoff until acked or abandoned; heartbeats ride the kernel-UDP
/// control channel, and a peer that misses too many in a row is expired
/// (its subscriptions dropped) and probed until it recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPlaneConfig {
    /// Delay before the first retransmission of an unacked announcement;
    /// doubles on every further attempt (capped at 100 ms).
    pub retransmit_timeout: Duration,
    /// Total transmission attempts (first send included) before an
    /// announcement is abandoned and counted as a control timeout.
    pub max_attempts: u32,
    /// Interval between heartbeat rounds toward every known peer.
    pub heartbeat_interval: Duration,
    /// Consecutive heartbeat rounds without hearing anything from a peer
    /// before it is expired.
    pub miss_threshold: u32,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        Self {
            retransmit_timeout: Duration::from_millis(1),
            max_attempts: 8,
            heartbeat_interval: Duration::from_millis(5),
            miss_threshold: 8,
        }
    }
}

/// Per-tenant runtime registration: slot quota, optional admission
/// rate, and cross-tenant fair-share weight (DESIGN.md §10).
///
/// Registered tenants get hard isolation on all three axes; sessions
/// attaching with an unregistered tenant id (or none) pool on the
/// anonymous catch-all with no guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id.  0 is the anonymous default tenant and is ignored if
    /// registered explicitly.
    pub tenant: TenantId,
    /// Slot-quota reservation and cap enforced by the memory pools at
    /// lend time.
    pub quota: TenantQuota,
    /// Admission token bucket (`None` = no rate limit).
    pub rate: Option<TenantRate>,
    /// Weight in the cross-tenant fair scheduler (clamped to ≥ 1).
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant with `quota`, no rate limit, and weight 1.
    pub fn new(tenant: TenantId, quota: TenantQuota) -> Self {
        Self {
            tenant,
            quota,
            rate: None,
            weight: 1,
        }
    }

    /// Adds an admission rate limit.
    pub fn with_rate(mut self, rate: TenantRate) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Sets the fair-share scheduler weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// Runtime construction parameters.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Unique id of this runtime instance across the deployment.
    pub runtime_id: u32,
    /// Technologies to attach.  Kernel UDP is always included (it carries
    /// the control plane and is the universal fallback).
    pub technologies: Vec<Technology>,
    /// Polling-thread layout.
    pub threading: ThreadingMode,
    /// Packet scheduler strategy.
    pub scheduler: SchedulerChoice,
    /// Policy→technology mapping strategy (§5.2 allows custom ones).
    pub mapping: Arc<dyn MappingStrategy>,
    /// First fabric port this runtime's datapaths bind; all runtimes of a
    /// deployment must share this value so peers can address each other.
    pub port_base: u16,
    /// Slots in the small (packet-sized) pool class.
    pub small_slots: usize,
    /// Slots in the large (jumbo-sized) pool class.
    pub large_slots: usize,
    /// Depth of each stream's TX token queue.
    pub tx_queue_depth: usize,
    /// Depth of each sink's delivery queue.
    pub sink_queue_depth: usize,
    /// Maximum messages moved per polling step (burst size).
    pub burst: usize,
    /// Polling shards per datapath (default 1 = the unsharded engine).
    /// Each shard owns its own scratch area, packet-scheduler instance,
    /// and — in threaded modes — polling thread; streams and channels
    /// are pinned to shards by stable hashes so per-stream TX order and
    /// per-channel RX order are preserved (DESIGN.md §9).  Clamped to
    /// `1..=64` at start.
    pub shards_per_datapath: usize,
    /// Control-plane retransmission and failure-detection parameters.
    pub control: ControlPlaneConfig,
    /// Observability: per-stream histograms, datapath counters, and the
    /// introspection endpoint (no-op unless the `telemetry` cargo
    /// feature is enabled).
    pub telemetry: TelemetryConfig,
    /// Registered tenants: slot quotas, admission rates, and fair-share
    /// weights.  Empty (the default) keeps single-tenant operation: no
    /// quota ledger, no admission buckets, the plain per-shard
    /// schedulers.
    pub tenants: Vec<TenantSpec>,
    /// What happens when a tenant outruns its admission budget (or its
    /// TX queue overflows): reject, shed lowest-criticality first, or
    /// backpressure best-effort traffic.
    pub overload: OverloadPolicy,
}

impl std::fmt::Debug for RuntimeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("runtime_id", &self.runtime_id)
            .field("technologies", &self.technologies)
            .field("threading", &self.threading)
            .field("scheduler", &self.scheduler)
            .field("shards_per_datapath", &self.shards_per_datapath)
            .field("port_base", &self.port_base)
            .field("control", &self.control)
            .field("telemetry", &self.telemetry)
            .field("tenants", &self.tenants)
            .field("overload", &self.overload)
            .finish()
    }
}

impl RuntimeConfig {
    /// Defaults: all four technologies, one thread per datapath, FIFO
    /// scheduling, port base 40000.
    pub fn new(runtime_id: u32) -> Self {
        Self {
            runtime_id,
            technologies: vec![
                Technology::KernelUdp,
                Technology::Xdp,
                Technology::Dpdk,
                Technology::Rdma,
            ],
            threading: ThreadingMode::default(),
            scheduler: SchedulerChoice::default(),
            mapping: Arc::new(DefaultMapping),
            port_base: 40_000,
            small_slots: 4_096,
            large_slots: 512,
            tx_queue_depth: 1_024,
            sink_queue_depth: 4_096,
            burst: 32,
            shards_per_datapath: 1,
            control: ControlPlaneConfig::default(),
            telemetry: TelemetryConfig::default(),
            tenants: Vec::new(),
            overload: OverloadPolicy::default(),
        }
    }

    /// Sets the number of polling shards per datapath (see
    /// [`RuntimeConfig::shards_per_datapath`]).
    pub fn with_shards_per_datapath(mut self, shards: usize) -> Self {
        self.shards_per_datapath = shards;
        self
    }

    /// Restricts the attached technologies (kernel UDP is re-added if
    /// missing — the control plane needs it).
    pub fn with_technologies(mut self, techs: &[Technology]) -> Self {
        self.technologies = techs.to_vec();
        self
    }

    /// Sets the threading mode.
    pub fn with_threading(mut self, mode: ThreadingMode) -> Self {
        self.threading = mode;
        self
    }

    /// Sets the scheduler strategy.
    pub fn with_scheduler(mut self, scheduler: SchedulerChoice) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Installs a custom QoS mapping strategy.
    pub fn with_mapping(mut self, mapping: Arc<dyn MappingStrategy>) -> Self {
        self.mapping = mapping;
        self
    }

    /// Overrides the port base.
    pub fn with_port_base(mut self, base: u16) -> Self {
        self.port_base = base;
        self
    }

    /// Overrides the control-plane retransmission/heartbeat parameters.
    pub fn with_control(mut self, control: ControlPlaneConfig) -> Self {
        self.control = control;
        self
    }

    /// Overrides the telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Registers a tenant: its slot quota, admission rate, and
    /// fair-share weight (see [`TenantSpec`]).  May be called once per
    /// tenant; duplicates are rejected at [`Runtime::start`].
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Sets the overload policy applied when a tenant outruns its
    /// admission budget.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }
}

/// Modeled per-hop IPC costs of the runtime (nanoseconds).
///
/// The paper's runtime is a separate process reached over shared-memory
/// queues; its per-message CPU work (token exchange, cache-cold queue
/// touches, scheduling) is what separates "INSANE fast" from raw DPDK in
/// Fig. 5/7 (≈0.4–0.8 µs per direction on the local testbed, more on the
/// slower cloud CPU — Fig. 6).  Our in-process reproduction executes the
/// real queue/scheduler code but cannot reproduce cross-process cache
/// effects, so the difference is charged here, scaled by the testbed's
/// `runtime_scale_pct`.  Calibrated against Fig. 7a/7b.
#[derive(Debug, Clone, Copy)]
struct HopCosts {
    per_burst_ns: u64,
    per_token_ns: u64,
    scale_pct: u32,
}

impl HopCosts {
    /// Charges one queue-drain burst carrying `tokens` messages as a
    /// single busy-wait (clock reads are expensive on slow hosts, so the
    /// per-message costs of one burst are summed and charged once).
    fn charge_batch(&self, tokens: u64) {
        insane_fabric::time::spin_for_ns(insane_fabric::time::scale_ns(
            self.per_burst_ns + tokens * self.per_token_ns,
            self.scale_pct,
        ));
    }
}

type BoxedScheduler = Box<dyn Scheduler<OutboundBundle> + Send>;

/// Framed copies of one message, one per remote destination.  The
/// overwhelmingly common case is a single subscriber, which must not
/// allocate.
#[derive(Debug)]
enum WireMsgs {
    One(WireMsg),
    Many(Vec<WireMsg>),
}

/// A scheduled unit: one emitted message fanned out to its remote
/// destinations.
#[derive(Debug)]
struct OutboundBundle {
    msgs: WireMsgs,
    outcome: Arc<OutcomeBoard>,
    seq: u64,
    /// Emitting tenant, the key of the cross-tenant fair scheduler.
    tenant: TenantId,
}

impl Tenanted for OutboundBundle {
    fn tenant(&self) -> TenantId {
        self.tenant
    }
}

/// Per-shard scratch buffers reused across polling iterations so the
/// hot path never allocates.  Polling threads own a private `Scratch`
/// outright (no lock anywhere on the threaded hot path); each shard
/// also stores one behind a mutex for the manual-drive entry points,
/// where the lock doubles as the serializer for concurrent callers.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    streams: Vec<Arc<StreamShared>>,
    streams_version: u64,
    /// Rotating TX drain start position (anti-starvation): the stream
    /// that fills the burst goes to the back of the rotation, so under
    /// saturation every stream progresses within one full rotation.
    drain_cursor: usize,
    requests: Vec<TxRequest>,
    ready: Vec<OutboundBundle>,
    inbound: Vec<InboundMsg>,
    sinks: Vec<Arc<SinkShared>>,
    remotes: Vec<(HostId, crate::runtime::dispatch::TechMask)>,
    wire: Vec<WireMsg>,
    /// This shard's view of the routing state, refreshed from the
    /// dispatcher's snapshot cell once per polling iteration (a single
    /// atomic load when nothing changed — no lock, no RMW).
    routing: Arc<RoutingTable>,
    /// This shard's view of the runtime tunables, refreshed alongside
    /// the routing snapshot.
    tunables: Arc<Tunables>,
    /// Routing cache: the last channel's sinks/remotes stay valid while
    /// the routing snapshot is unchanged — consecutive messages almost
    /// always share a channel, so the hot path skips both table
    /// lookups.  Invalidated whenever `routing` is refreshed.
    cached_channel: Option<u32>,
    /// Per-owner-shard RX fan-out buckets: the device-polling shard
    /// groups a burst's inbound messages by owning shard so each inbox
    /// mutex is taken once per burst, not once per message.
    rx_buckets: Vec<Vec<InboundMsg>>,
    /// Whether the last polling iteration filled its burst budget
    /// somewhere — the adaptive burst controller's grow signal.
    burst_filled: bool,
    inbound_sinks: Vec<Arc<SinkShared>>,
    /// Outcome-board completion batch for one TX burst (board, highest
    /// sequence), reused across iterations like the other buffers.
    boards: Vec<(Arc<OutcomeBoard>, u64)>,
}

impl Scratch {
    /// A scratch whose stream snapshot is invalid, forcing a rebuild on
    /// first use.
    fn fresh() -> Self {
        Scratch {
            streams_version: u64::MAX,
            ..Scratch::default()
        }
    }
}

/// Per-shard state of one datapath (DESIGN.md §9): its own packet
/// scheduler, a stored scratch area for the manual-drive entry points,
/// and — when the datapath runs more than one shard — an inbox carrying
/// the inbound messages of the channels this shard owns.
struct DatapathShard {
    scheduler: Mutex<BoxedScheduler>,
    scratch: Mutex<Scratch>,
    rx_inbox: Mutex<VecDeque<InboundMsg>>,
    /// Current burst budget of this shard's adaptive controller: grows
    /// toward `Tunables::burst_max` while bursts fill, decays toward
    /// `Tunables::burst_min` while the shard idles.  Plain Relaxed
    /// loads/stores — the only writer is the shard's own poller (plus
    /// the cold reload clamp), and staleness costs one iteration.
    burst: AtomicUsize,
}

/// One unacked announcement awaiting its retransmission deadline.
#[derive(Debug)]
struct PendingCtl {
    op: ControlOp,
    channel: u32,
    dst: HostId,
    /// Transmission attempts so far (the original send counts).
    attempts: u32,
    /// Current retransmission delay (doubles per attempt).
    backoff: Duration,
    next_at: Instant,
}

/// Mutable state of the self-healing control plane, driven from the
/// kernel-UDP datapath's polling iterations.
#[derive(Debug)]
struct ControlPlane {
    /// Unacked Hello/Subscribe announcements being retransmitted.
    pending: Vec<PendingCtl>,
    /// Per-peer-runtime count of heartbeat rounds since we last heard
    /// from it.  Round-based rather than wall-clock so manually driven
    /// runtimes never expire peers between polls.
    misses: HashMap<u32, u32>,
    /// Hosts of expired peers, probed with Hellos at heartbeat cadence
    /// until they answer again.
    dormant: Vec<HostId>,
    next_heartbeat: Instant,
}

pub(crate) struct RuntimeInner {
    config: RuntimeConfig,
    fabric: Fabric,
    host: HostId,
    pools: PoolSet,
    /// Per-tenant token-bucket admission (inert with no tenants).
    admission: AdmissionController,
    plugins: Vec<Arc<dyn DatapathPlugin>>,
    /// Per-datapath shard states, `shards[datapath][shard]`.  Every
    /// datapath runs the same shard count
    /// (`config.shards_per_datapath`), so a shard index is valid across
    /// datapaths — failover moves shard `s` of a downed datapath onto
    /// shard `s` of kernel UDP, preserving per-stream order.
    shards: Vec<Vec<DatapathShard>>,
    /// Per-datapath device-RX claim: whichever shard acquires it polls
    /// the device and fans inbound messages to the owning shards'
    /// inboxes, so the device is never polled concurrently.
    rx_claim: Vec<Mutex<()>>,
    pub(crate) streams: StreamRegistry,
    pub(crate) dispatcher: Dispatcher,
    /// Hot-reloadable pacing knobs, published as a snapshot so the
    /// polling shards read them lock-free (DESIGN.md §12).
    tunables: SnapshotCell<Tunables>,
    pub(crate) stats: Arc<RuntimeStats>,
    stop: AtomicBool,
    started: AtomicBool,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Number of polling threads spawned; the polling loops compare it
    /// against the `Arc` strong count to detect that every user handle
    /// is gone (see `polling_loop`).
    polling_threads: AtomicUsize,
    next_id: AtomicU64,
    control_seq: AtomicU64,
    hops: HopCosts,
    /// Index of the kernel-UDP plugin (always attached: control plane and
    /// universal fallback).
    udp_idx: usize,
    /// Health gate per plugin: true while the underlying device is failed.
    plugin_down: Vec<AtomicBool>,
    /// The fabric endpoint probed to decide each plugin's health.
    health_eps: Vec<Endpoint>,
    control: Mutex<ControlPlane>,
    /// Telemetry root (inert when disabled or compiled out).
    telemetry: RuntimeTelemetry,
    /// Per-shard telemetry counter handles, `dp_tel[datapath][shard]`.
    dp_tel: Vec<Vec<DatapathTel>>,
}

impl std::fmt::Debug for RuntimeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInner")
            .field("runtime_id", &self.config.runtime_id)
            .field("host", &self.host)
            .field("technologies", &self.available_technologies())
            .finish()
    }
}

/// Handle to a host's INSANE runtime.  Cloning shares the same runtime.
#[derive(Clone, Debug)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Builds a runtime on `host`, binds its datapath devices, and spawns
    /// polling threads per the configured [`ThreadingMode`].
    ///
    /// # Errors
    ///
    /// Propagates device binding failures (port collisions, unknown host)
    /// and pool construction failures.
    pub fn start(
        mut config: RuntimeConfig,
        fabric: &Fabric,
        host: HostId,
    ) -> Result<Runtime, InsaneError> {
        if !config.technologies.contains(&Technology::KernelUdp) {
            config.technologies.insert(0, Technology::KernelUdp);
        }
        config.technologies.dedup();
        config.shards_per_datapath = config.shards_per_datapath.clamp(1, 64);
        let mut pool_builder = PoolSetBuilder::new()
            .pool(2_048, config.small_slots)
            .pool(16 * 1_024, config.large_slots);
        for spec in &config.tenants {
            pool_builder = pool_builder.tenant(spec.tenant, spec.quota);
        }
        let pools = pool_builder.build()?;
        let admission_rates: Vec<(TenantId, Option<TenantRate>)> = config
            .tenants
            .iter()
            .map(|spec| (spec.tenant, spec.rate))
            .collect();
        let admission = AdmissionController::new(&admission_rates, config.overload);

        let stats = Arc::new(RuntimeStats::default());
        let mut plugins: Vec<Arc<dyn DatapathPlugin>> = Vec::new();
        let mut health_eps = Vec::new();
        for &tech in &config.technologies {
            let port = config.port_base + tech_port_offset(tech);
            let plugin: Arc<dyn DatapathPlugin> = match tech {
                Technology::KernelUdp => {
                    Arc::new(UdpPlugin::new(fabric, host, port, Arc::clone(&stats))?)
                }
                Technology::Dpdk => {
                    Arc::new(DpdkPlugin::new(fabric, host, port, Arc::clone(&stats))?)
                }
                Technology::Xdp => {
                    Arc::new(XdpPlugin::new(fabric, host, port, Arc::clone(&stats))?)
                }
                Technology::Rdma => Arc::new(RdmaPlugin::new(
                    fabric,
                    host,
                    config.port_base + 16,
                    16 * 1024 - PAYLOAD_OFFSET,
                    Arc::clone(&stats),
                )?),
            };
            plugins.push(plugin);
            // The endpoint whose injected-failure state gates the whole
            // plugin.  RDMA binds per-peer queue pairs from `base + 16`
            // up, so whole-NIC failures are injected as a port range
            // starting there (see `FaultInjector::fail_device_range`).
            health_eps.push(Endpoint {
                host,
                port: match tech {
                    Technology::Rdma => config.port_base + 16,
                    t => config.port_base + tech_port_offset(t),
                },
            });
        }
        let udp_idx = plugins
            .iter()
            .position(|p| p.technology() == Technology::KernelUdp)
            .ok_or_else(|| {
                InsaneError::Internal("kernel UDP datapath missing after normalization".into())
            })?;

        let nshards = config.shards_per_datapath;
        let mut shards = Vec::with_capacity(plugins.len());
        for _ in &plugins {
            let mut dp_shards = Vec::with_capacity(nshards);
            for _ in 0..nshards {
                dp_shards.push(DatapathShard {
                    scheduler: Mutex::new(Self::build_scheduler(&config)?),
                    scratch: Mutex::new(Scratch::fresh()),
                    rx_inbox: Mutex::new(VecDeque::new()),
                    burst: AtomicUsize::new(config.burst.max(1)),
                });
            }
            shards.push(dp_shards);
        }
        let rx_claim = plugins.iter().map(|_| Mutex::new(())).collect::<Vec<_>>();

        let hops = HopCosts {
            per_burst_ns: 40,
            per_token_ns: 20,
            scale_pct: fabric.profile().runtime_scale_pct,
        };

        let control = ControlPlane {
            pending: Vec::new(),
            misses: HashMap::new(),
            dormant: Vec::new(),
            next_heartbeat: Instant::now() + config.control.heartbeat_interval,
        };
        let plugin_down = plugins.iter().map(|_| AtomicBool::new(false)).collect();
        let telemetry = RuntimeTelemetry::new(&config.telemetry);
        let dp_tel = plugins
            .iter()
            .map(|p| {
                let name = p.technology().name().to_lowercase();
                (0..nshards).map(|s| telemetry.datapath(&name, s)).collect()
            })
            .collect();
        let tunables = SnapshotCell::new(Tunables::for_burst(config.burst));
        let inner = Arc::new(RuntimeInner {
            config,
            fabric: fabric.clone(),
            host,
            pools,
            admission,
            plugins,
            shards,
            rx_claim,
            streams: StreamRegistry::default(),
            dispatcher: Dispatcher::default(),
            tunables,
            stats,
            stop: AtomicBool::new(false),
            started: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            polling_threads: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            control_seq: AtomicU64::new(0),
            hops,
            udp_idx,
            plugin_down,
            health_eps,
            control: Mutex::new(control),
            telemetry,
            dp_tel,
        });
        let runtime = Runtime { inner };
        runtime.spawn_threads()?;
        Ok(runtime)
    }

    fn build_scheduler(config: &RuntimeConfig) -> Result<BoxedScheduler, InsaneError> {
        match &config.scheduler {
            // With tenants registered, the FIFO strategy is upgraded to
            // cross-tenant weighted DRR so one tenant's backlog cannot
            // monopolize a shard's drain burst.  The time-aware shaper
            // keeps its gate semantics unchanged: its exclusive windows
            // already bound what any one class — and thus any one
            // backlog — can take per cycle (DESIGN.md §10).
            SchedulerChoice::Fifo => {
                if config.tenants.is_empty() {
                    Ok(Box::new(FifoScheduler::new()))
                } else {
                    let weights: Vec<(TenantId, u32)> = config
                        .tenants
                        .iter()
                        .map(|spec| (spec.tenant, spec.weight))
                        .collect();
                    Ok(Box::new(TenantDrr::new(&weights)))
                }
            }
            SchedulerChoice::TimeAware {
                critical_window,
                cycle,
                guard_band,
                frame_tx,
            } => {
                let gcl = GateControlList::exclusive_window(
                    TrafficClass::TIME_CRITICAL,
                    *critical_window,
                    *cycle,
                    Instant::now(),
                )?
                .with_guard_band(*guard_band)?;
                let mut tas = TasScheduler::new(gcl);
                if !frame_tx.is_zero() {
                    tas.set_timing(None, Some(*frame_tx))?;
                }
                Ok(Box::new(tas))
            }
        }
    }

    fn spawn_threads(&self) -> Result<(), InsaneError> {
        let nshards = self.inner.config.shards_per_datapath;
        // Expand a list of datapath indices into (datapath, shard)
        // pairs — a thread assigned a datapath drives all its shards.
        let all_shards = |indices: &[usize]| -> Vec<(usize, usize)> {
            indices
                .iter()
                .flat_map(|&idx| (0..nshards).map(move |s| (idx, s)))
                .collect()
        };
        // Resolve the threading mode into per-thread (datapath, shard)
        // assignment lists.  PerDatapath spawns one thread per *shard*:
        // that is the whole point of sharding — a saturated datapath
        // scales onto more cores.
        let assignments: Vec<Vec<(usize, usize)>> = match &self.inner.config.threading {
            ThreadingMode::Manual => return Ok(()),
            ThreadingMode::Shared => vec![all_shards(
                &(0..self.inner.plugins.len()).collect::<Vec<_>>(),
            )],
            ThreadingMode::PerDatapath => (0..self.inner.plugins.len())
                .flat_map(|i| (0..nshards).map(move |s| vec![(i, s)]))
                .collect(),
            ThreadingMode::Custom(groups) => {
                let mut assignments: Vec<Vec<(usize, usize)>> = Vec::new();
                let mut covered = vec![false; self.inner.plugins.len()];
                for group in groups {
                    let mut indices = Vec::new();
                    for tech in group {
                        if let Some(idx) = self.inner.plugin_index(*tech) {
                            if !covered[idx] {
                                covered[idx] = true;
                                indices.push(idx);
                            }
                        }
                    }
                    if !indices.is_empty() {
                        assignments.push(all_shards(&indices));
                    }
                }
                // Unmentioned datapaths still need a poller.
                let leftovers: Vec<usize> = covered
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !**c)
                    .map(|(i, _)| i)
                    .collect();
                if !leftovers.is_empty() {
                    let pairs = all_shards(&leftovers);
                    match assignments.first_mut() {
                        Some(first) => first.extend(pairs),
                        None => assignments.push(pairs),
                    }
                }
                assignments
            }
        };
        // Published before the first spawn so every polling loop's
        // liveness check sees the final count (an undercount could make
        // a loop believe user handles are gone while siblings are still
        // being spawned; `Runtime::start`'s own strong handle prevents
        // even that, but exactness is cheap).
        self.inner
            .polling_threads
            .store(assignments.len(), Ordering::Release);
        for (thread_no, pairs) in assignments.into_iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let name = match pairs.as_slice() {
                [(idx, s)] => {
                    let tech = self.inner.plugins[*idx].technology().name().to_lowercase();
                    if nshards == 1 {
                        format!("insane-{tech}")
                    } else {
                        format!("insane-{tech}-{s}")
                    }
                }
                _ => format!("insane-poll-{thread_no}"),
            };
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || polling_loop(inner, pairs))
                .map_err(|e| {
                    InsaneError::Internal(format!("failed to spawn datapath polling thread: {e}"))
                })?;
            self.inner.threads.lock().push(handle);
        }
        self.inner.started.store(true, Ordering::Release);
        Ok(())
    }

    /// This runtime's unique id.
    pub fn runtime_id(&self) -> u32 {
        self.inner.config.runtime_id
    }

    /// The host this runtime serves.
    pub fn host(&self) -> HostId {
        self.inner.host
    }

    /// The fabric the runtime is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// Technologies attached to this runtime, in plugin order.
    pub fn available_technologies(&self) -> Vec<Technology> {
        self.inner.available_technologies()
    }

    /// Whether polling threads are running (false in
    /// [`ThreadingMode::Manual`]).
    pub fn is_started(&self) -> bool {
        self.inner.started.load(Ordering::Acquire)
    }

    /// Announces this runtime to a peer runtime on `peer_host`; peers
    /// then exchange subscriptions automatically.
    ///
    /// # Errors
    ///
    /// Propagates control-message send failures.
    pub fn add_peer(&self, peer_host: HostId) -> Result<(), InsaneError> {
        self.inner.send_control(ControlOp::Hello, 0, peer_host)
    }

    /// Runs one polling iteration of the plugin driving `tech` only —
    /// all of its shards, in turn; returns whether any work was done.
    /// Benchmark harnesses use this to drive a single datapath's
    /// critical path inline, the way its dedicated polling threads
    /// would, without serializing the other plugins' idle polls into
    /// the measurement.
    pub fn poll_technology(&self, tech: Technology) -> bool {
        match self.inner.plugin_index(tech) {
            Some(idx) => self.inner.poll_datapath(idx),
            None => false,
        }
    }

    /// Runs one polling iteration of a single shard of the plugin
    /// driving `tech` (sharded manual drive: per-shard measurement
    /// harnesses and tests).  Returns false for an unknown technology
    /// or an out-of-range shard.
    pub fn poll_technology_shard(&self, tech: Technology, shard: usize) -> bool {
        match self.inner.plugin_index(tech) {
            Some(idx) if shard < self.inner.shards[idx].len() => {
                let mut scratch = self.inner.shards[idx][shard].scratch.lock();
                self.inner.poll_datapath_shard(idx, shard, &mut scratch)
            }
            _ => false,
        }
    }

    /// Number of polling shards per datapath this runtime was built
    /// with.
    pub fn shards_per_datapath(&self) -> usize {
        self.inner.config.shards_per_datapath
    }

    /// The currently published runtime tunables.
    pub fn tunables(&self) -> Tunables {
        (*self.inner.tunables.load()).clone()
    }

    /// Publishes new pacing tunables to a live runtime (hot reload, no
    /// restart): every polling shard picks the snapshot up at its next
    /// iteration through the one atomic refresh it already performs.
    /// In-flight messages are unaffected — the knobs only pace future
    /// polling iterations.
    ///
    /// # Errors
    ///
    /// Rejects inconsistent values (see [`Tunables::validate`]) without
    /// publishing anything.
    pub fn reload_tunables(&self, tunables: Tunables) -> Result<(), InsaneError> {
        self.inner.reload_tunables(tunables)
    }

    /// Runs only the transmit half (TX drain → schedule → send) of one
    /// datapath's polling iteration, across all its shards.  Serial
    /// measurement harnesses use this to flush an emitted message to
    /// the wire without charging the receive-poll work that a deployed
    /// polling thread performs concurrently, off the critical path.
    pub fn poll_transmit(&self, tech: Technology) -> bool {
        match self.inner.plugin_index(tech) {
            Some(idx) => self.inner.poll_datapath_tx(idx),
            None => false,
        }
    }

    /// The transmit half of a single shard's polling iteration (see
    /// [`Runtime::poll_transmit`]).
    pub fn poll_transmit_shard(&self, tech: Technology, shard: usize) -> bool {
        match self.inner.plugin_index(tech) {
            Some(idx) if shard < self.inner.shards[idx].len() => {
                let mut scratch = self.inner.shards[idx][shard].scratch.lock();
                self.inner.poll_tx_inner(idx, shard, &mut scratch)
            }
            _ => false,
        }
    }

    /// Runs one polling iteration over every datapath; returns whether
    /// any work was done.  This is the manual-drive entry point.
    pub fn poll_once(&self) -> bool {
        let mut did = false;
        for idx in 0..self.inner.plugins.len() {
            did |= self.inner.poll_datapath(idx);
        }
        if !did {
            self.inner.stats.idle_polls.fetch_add(1, Ordering::Relaxed);
        }
        did
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Outstanding slots across the runtime pools (diagnostics).
    pub fn slots_in_use(&self) -> usize {
        self.inner.pools.total_in_use()
    }

    /// The full runtime observability snapshot as a JSON string — the
    /// same document the introspection endpoint serves: per-stream
    /// latency histograms, per-datapath counters, runtime counters,
    /// pool occupancy, and fault-injection statistics.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_json(&self) -> String {
        self.inner.introspection_json()
    }

    /// Serves runtime introspection over a Unix-domain socket at
    /// `path` (one request line per connection: `stats` or `ping`).
    /// The serving thread stops with the runtime and removes the
    /// socket file on exit.  `tools/insanectl` is the matching client.
    ///
    /// # Errors
    ///
    /// Fails when the socket cannot be bound or the thread cannot be
    /// spawned.
    #[cfg(feature = "telemetry")]
    pub fn serve_introspection(
        &self,
        path: impl Into<std::path::PathBuf>,
    ) -> Result<(), InsaneError> {
        let handle =
            crate::telemetry::introspection::spawn(Arc::downgrade(&self.inner), path.into())?;
        self.inner.threads.lock().push(handle);
        Ok(())
    }

    /// Stops the polling threads and detaches the devices.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.inner.started.store(false, Ordering::Release);
    }

    pub(crate) fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Iterations between liveness checks in `polling_loop`.  Shutdown via
/// [`Runtime::shutdown`] stays immediate (`stop` is read every
/// iteration); only the detection of a runtime whose user handles were
/// all dropped without a shutdown call is deferred to this cadence.
const LIVENESS_CHECK_EVERY: u32 = 1024;

fn polling_loop(inner: Arc<RuntimeInner>, datapaths: Vec<(usize, usize)>) {
    // One private scratch per assigned shard: the threaded hot path
    // owns its buffers outright and never takes a scratch lock.  (The
    // per-shard stored scratch is only for manual drives, which do not
    // run concurrently with polling threads.)
    let mut scratches: Vec<Scratch> = datapaths.iter().map(|_| Scratch::fresh()).collect();
    let mut idle_streak = 0u32;
    // This loop used to hold only a `Weak` and upgrade it every
    // iteration — two contended refcount RMWs on the hottest loop in
    // the system.  A strong handle is held instead.  Liveness (did the
    // user drop every `Runtime` handle without calling shutdown?)
    // cannot be observed by re-upgrading a `Weak`, because this
    // thread's own strong handle would keep the upgrade succeeding
    // forever; it is detected by periodically comparing the strong
    // count against the number of polling threads — once they are the
    // only owners left, the runtime is unreachable from user code, and
    // the first thread to notice raises `stop` for its siblings.
    let mut since_liveness = 0u32;
    loop {
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        since_liveness += 1;
        if since_liveness >= LIVENESS_CHECK_EVERY {
            since_liveness = 0;
            if Arc::strong_count(&inner) <= inner.polling_threads.load(Ordering::Acquire) {
                inner.stop.store(true, Ordering::Release);
                break;
            }
        }
        let mut did = false;
        for (slot, &(idx, shard)) in datapaths.iter().enumerate() {
            did |= inner.poll_datapath_shard(idx, shard, &mut scratches[slot]);
        }
        if did {
            idle_streak = 0;
        } else {
            idle_streak += 1;
            // §5.3: polling threads are automatically paused when idle.
            // Thresholds come from the hot-reloadable tunables snapshot
            // the first assigned shard refreshed this iteration.
            let tun = &scratches[0].tunables;
            if idle_streak > tun.idle_sleep_after {
                // Sleeps slow the iteration rate ~100×; advance the
                // liveness clock accordingly so an idle, dropped
                // runtime is still reclaimed promptly.
                since_liveness = since_liveness.saturating_add(63);
                std::thread::sleep(Duration::from_micros(tun.idle_sleep_us));
            } else if idle_streak > tun.idle_yield_after {
                std::thread::yield_now();
            }
        }
    }
}

impl RuntimeInner {
    pub(crate) fn available_technologies(&self) -> Vec<Technology> {
        self.plugins.iter().map(|p| p.technology()).collect()
    }

    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn pools(&self) -> &PoolSet {
        &self.pools
    }

    pub(crate) fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    pub(crate) fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Per-stream telemetry handle for a sink on `channel`, rolled up
    /// into `tenant`'s histograms too (inert when telemetry is
    /// disabled or compiled out).
    pub(crate) fn telemetry_stream(
        &self,
        channel: u32,
        class: TrafficClass,
        tenant: TenantId,
    ) -> SinkTel {
        self.telemetry.stream(channel, class, tenant)
    }

    /// Builds the introspection snapshot served over the endpoint and
    /// by [`Runtime::telemetry_json`].
    #[cfg(feature = "telemetry")]
    pub(crate) fn introspection_json(&self) -> String {
        use insane_telemetry::Value;
        let reg = self.telemetry.snapshot();
        // One datapath entry per (plugin, shard), combining the
        // telemetry counters (when recording is enabled) with the
        // health gate and the shard's live scheduler occupancy.
        let nshards = self.config.shards_per_datapath;
        let datapaths: Vec<Value> = self
            .plugins
            .iter()
            .enumerate()
            .flat_map(|(idx, plugin)| {
                let name = plugin.technology().name().to_lowercase();
                let reg = reg.as_ref();
                (0..nshards).map(move |s| {
                    // Registration order in `Runtime::start` is
                    // datapath-major, shard-minor.
                    let counters = reg
                        .and_then(|r| r.datapaths.get(idx * nshards + s))
                        .filter(|d| d.name == name && d.shard == s)
                        .cloned()
                        .unwrap_or_default();
                    let sh = self.shards.get(idx).and_then(|dp| dp.get(s));
                    let queued = sh.map_or(0, |sh| sh.scheduler.lock().len() as u64);
                    let burst = sh.map_or(0, |sh| sh.burst.load(Ordering::Relaxed) as u64);
                    Value::object([
                        ("technology", Value::from(name.clone())),
                        ("shard", Value::from(s as u64)),
                        (
                            "down",
                            Value::Bool(self.plugin_down[idx].load(Ordering::Relaxed)),
                        ),
                        ("tx_messages", Value::from(counters.tx_messages)),
                        ("rx_messages", Value::from(counters.rx_messages)),
                        ("scheduled", Value::from(counters.scheduled)),
                        ("queued", Value::from(queued)),
                        ("burst", Value::from(burst)),
                    ])
                })
            })
            .collect();
        let streams: Vec<Value> = reg
            .as_ref()
            .map(|r| r.streams.iter().map(|s| s.to_json()).collect())
            .unwrap_or_default();
        let pools: Vec<Value> = self
            .pools
            .classes()
            .map(|pool| {
                let stats = pool.stats();
                Value::object([
                    ("slot_size", Value::from(pool.slot_size() as u64)),
                    ("slot_count", Value::from(pool.slot_count() as u64)),
                    ("free_slots", Value::from(pool.free_slots() as u64)),
                    ("in_use", Value::from(stats.in_use as u64)),
                    ("high_water", Value::from(stats.high_water as u64)),
                    ("exhaustions", Value::from(stats.exhaustions)),
                    ("acquires", Value::from(stats.acquires)),
                    ("misuse_rejections", Value::from(stats.misuse_rejections)),
                ])
            })
            .collect();
        // Per-tenant rollup: slot quotas from the memory ledger joined
        // with the admission controller's counters and the telemetry
        // latency rollup (same tenant order is not guaranteed, so join
        // by id; anonymous tenant 0 is included).
        let admission = self.admission.usage();
        let tenants: Vec<Value> = self
            .pools
            .tenant_usage()
            .iter()
            .map(|usage| {
                let adm = admission.iter().find(|a| a.tenant == usage.tenant);
                let lat = reg
                    .as_ref()
                    .and_then(|r| r.tenants.iter().find(|t| t.tenant == usage.tenant));
                Value::object([
                    ("tenant", Value::from(u64::from(usage.tenant))),
                    ("held", Value::from(usage.held as u64)),
                    ("reserved", Value::from(usage.reserved as u64)),
                    ("max", Value::from(usage.max as u64)),
                    ("quota_rejections", Value::from(usage.quota_rejections)),
                    ("admitted", Value::from(adm.map_or(0, |a| a.admitted))),
                    ("rejected", Value::from(adm.map_or(0, |a| a.rejected))),
                    ("shed", Value::from(adm.map_or(0, |a| a.shed))),
                    ("throttled", Value::from(adm.map_or(0, |a| a.throttled))),
                    ("consumed", Value::from(lat.map_or(0, |t| t.consumed))),
                    ("p50_ns", Value::from(lat.map_or(0, |t| t.total.p50_ns))),
                    ("p99_ns", Value::from(lat.map_or(0, |t| t.total.p99_ns))),
                ])
            })
            .collect();
        let f = self.fabric.faults().stats();
        let faults = Value::object([
            ("injected_drops", Value::from(f.injected_drops)),
            ("corruptions", Value::from(f.corruptions)),
            ("duplicates", Value::from(f.duplicates)),
            ("reorders", Value::from(f.reorders)),
            ("link_down_drops", Value::from(f.link_down_drops)),
            ("device_down_drops", Value::from(f.device_down_drops)),
        ]);
        Value::object([
            ("schema", Value::from(insane_telemetry::SNAPSHOT_SCHEMA)),
            ("runtime_id", Value::from(u64::from(self.config.runtime_id))),
            ("host", Value::from(u64::from(self.host.index()))),
            ("timestamp_ns", Value::from(epoch_ns())),
            ("telemetry_enabled", Value::Bool(reg.is_some())),
            (
                "sample_every",
                Value::from(reg.as_ref().map(|r| r.sample_every).unwrap_or(0)),
            ),
            ("counters", self.stats.snapshot().to_json()),
            ("streams", Value::Array(streams)),
            ("datapaths", Value::Array(datapaths)),
            ("pools", Value::Array(pools)),
            ("tenants", Value::Array(tenants)),
            ("faults", faults),
        ])
        .to_string()
    }

    pub(crate) fn is_started(&self) -> bool {
        self.started.load(Ordering::Acquire)
    }

    /// Validates and publishes new tunables, then clamps every shard's
    /// live burst budget into the new bounds (the adaptive controller
    /// only moves by grow/shrink steps, so a budget stranded outside
    /// the new range under steady partial load would never re-enter it
    /// on its own).
    // insane-lint: cold-path -- control-plane reload, not steady state
    pub(crate) fn reload_tunables(&self, tunables: Tunables) -> Result<(), InsaneError> {
        tunables
            .validate()
            .map_err(|e| InsaneError::InvalidConfig(format!("tunables rejected: {e}")))?;
        // Re-arm the time-aware shaper knobs before publishing: the
        // guard band is validated against each live scheduler's gate
        // cycle, and a rejection must leave the snapshot unchanged.
        // (Every shard shares one gate program shape, so the check
        // either passes or fails uniformly.)
        if tunables.tas_guard_band_ns.is_some() || tunables.tas_frame_tx_ns.is_some() {
            let guard = tunables.tas_guard_band_ns.map(Duration::from_nanos);
            let frame_tx = tunables.tas_frame_tx_ns.map(Duration::from_nanos);
            for dp in &self.shards {
                for sh in dp {
                    sh.scheduler
                        .lock()
                        .set_timing(guard, frame_tx)
                        .map_err(|e| {
                            InsaneError::InvalidConfig(format!("tunables rejected: {e}"))
                        })?;
                }
            }
        }
        let (min, max) = (tunables.burst_min, tunables.burst_max);
        self.tunables.publish(Arc::new(tunables));
        for dp in &self.shards {
            for sh in dp {
                let current = sh.burst.load(Ordering::Relaxed);
                let clamped = current.clamp(min, max);
                if clamped != current {
                    sh.burst.store(clamped, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Applies an introspection-endpoint `reload` request: each
    /// argument is one `key=value` assignment against the current
    /// tunables snapshot; the batch publishes atomically or not at all.
    /// Returns a human-readable summary of the published snapshot.
    #[cfg(feature = "telemetry")]
    // insane-lint: cold-path -- control-plane reload, not steady state
    pub(crate) fn reload_from_kv(&self, pairs: &str) -> Result<String, String> {
        let mut next = (*self.tunables.load()).clone();
        let mut applied = 0u32;
        for pair in pairs.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            next.apply_kv(key, value)?;
            applied += 1;
        }
        if applied == 0 {
            return Err("reload requires at least one key=value argument".into());
        }
        let fmt_opt = |v: Option<u64>| v.map_or_else(|| "-".into(), |n| n.to_string());
        let summary = format!(
            "reloaded {applied} tunable(s): burst_min={} burst_max={} idle_yield_after={} idle_sleep_after={} idle_sleep_us={} tas_guard_band_ns={} tas_frame_tx_ns={}",
            next.burst_min, next.burst_max, next.idle_yield_after, next.idle_sleep_after, next.idle_sleep_us,
            fmt_opt(next.tas_guard_band_ns), fmt_opt(next.tas_frame_tx_ns)
        );
        self.reload_tunables(next).map_err(|e| e.to_string())?;
        Ok(summary)
    }

    fn plugin_index(&self, tech: Technology) -> Option<usize> {
        self.plugins.iter().position(|p| p.technology() == tech)
    }

    pub(crate) fn plugin_for(
        &self,
        tech: Technology,
    ) -> Result<&Arc<dyn DatapathPlugin>, InsaneError> {
        self.plugin_index(tech)
            .map(|idx| &self.plugins[idx])
            .ok_or_else(|| {
                InsaneError::Internal(format!("technology {} is not attached", tech.name()))
            })
    }

    /// Maps a QoS policy and registers the resulting stream, owned by
    /// `tenant`.
    pub(crate) fn create_stream(
        &self,
        qos: QosPolicy,
        tenant: TenantId,
    ) -> Result<Arc<StreamShared>, InsaneError> {
        if self.is_stopped() {
            return Err(InsaneError::Closed);
        }
        let available = self.available_technologies();
        let mapped: MappedPath = self.config.mapping.map(&qos, &available);
        if mapped.fallback {
            self.stats.fallback_streams.fetch_add(1, Ordering::Relaxed);
        }
        let stream = Arc::new(StreamShared {
            id: self.next_id(),
            qos,
            mapped,
            tenant,
            tx: insane_queues::MpmcQueue::new(self.config.tx_queue_depth),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        self.streams.register(Arc::clone(&stream));
        Ok(stream)
    }

    /// Registers a sink and announces the subscription to every peer.
    pub(crate) fn register_sink(&self, sink: Arc<SinkShared>) {
        let channel = sink.channel;
        let first = self.dispatcher.add_sink(sink);
        if first {
            self.broadcast_control(ControlOp::Subscribe, channel);
        }
    }

    /// Unregisters a sink, withdrawing the subscription when it was the
    /// channel's last.
    pub(crate) fn unregister_sink(&self, sink_id: u64, channel: u32) {
        let last = self.dispatcher.remove_sink(sink_id, channel);
        if last {
            self.broadcast_control(ControlOp::Unsubscribe, channel);
        }
    }

    fn broadcast_control(&self, op: ControlOp, channel: u32) {
        for (_, host) in self.dispatcher.peers() {
            self.send_control_logged(op, channel, host);
        }
    }

    /// As [`RuntimeInner::send_control`], but a failure is accounted and
    /// warned about instead of propagated (for call sites that have no
    /// caller to report to — broadcasts, replies, retransmissions).
    // insane-lint: cold-path -- control-plane send, not per-message work
    fn send_control_logged(&self, op: ControlOp, channel: u32, dst: HostId) {
        if let Err(e) = self.send_control(op, channel, dst) {
            self.stats
                .control_send_failures
                .fetch_add(1, Ordering::Relaxed);
            crate::warn(&format!(
                "host {:?}: control {op:?} (channel {channel}) toward {dst:?} failed: {e}",
                self.host
            ));
        }
    }

    /// Sends one control message; announcements that expect an ack are
    /// additionally registered for retransmission until acked.
    // insane-lint: cold-path -- control-plane send, not per-message work
    fn send_control(&self, op: ControlOp, channel: u32, dst: HostId) -> Result<(), InsaneError> {
        if op.needs_ack() {
            self.register_pending(op, channel, dst);
        }
        self.send_control_raw(op, channel, dst)
    }

    /// Builds and sends one control message over the kernel-UDP datapath
    /// (always attached: it carries the control plane).
    // insane-lint: cold-path -- control-plane send, not per-message work
    fn send_control_raw(
        &self,
        op: ControlOp,
        channel: u32,
        dst: HostId,
    ) -> Result<(), InsaneError> {
        let plugin = &self.plugins[self.udp_idx];
        let payload = encode_control(op, self.host, tech_mask(&self.available_technologies()));
        let mut guard = self.pools.acquire(PAYLOAD_OFFSET + payload.len())?;
        guard[PAYLOAD_OFFSET..].copy_from_slice(&payload);
        let hdr = InsaneHeader {
            kind: MessageKind::Control,
            traffic_class: 0,
            channel,
            src_runtime: self.config.runtime_id,
            seq: self.control_seq.fetch_add(1, Ordering::Relaxed),
            frag_index: 0,
            frag_count: 1,
            total_len: payload.len() as u32,
            timestamp_ns: epoch_ns(),
        };
        let wire_start = plugin.frame(&mut guard, &hdr, payload.len(), dst)?;
        let view = self.pools.view(guard.into_token())?;
        let mut burst = vec![WireMsg {
            view,
            wire_start,
            dst,
        }];
        plugin.send_burst(&mut burst)?;
        Ok(())
    }

    /// Registers an unacked announcement for retransmission (idempotent:
    /// an already-pending `(op, channel, dst)` keeps its schedule).
    fn register_pending(&self, op: ControlOp, channel: u32, dst: HostId) {
        let timeout = self.config.control.retransmit_timeout;
        let mut cp = self.control.lock();
        if cp
            .pending
            .iter()
            .any(|p| p.op == op && p.channel == channel && p.dst == dst)
        {
            return;
        }
        cp.pending.push(PendingCtl {
            op,
            channel,
            dst,
            attempts: 1,
            backoff: timeout,
            next_at: Instant::now() + timeout,
        });
    }

    /// Clears a pending announcement once its ack arrives.
    fn ack_pending(&self, op: ControlOp, channel: u32, dst: HostId) {
        self.control
            .lock()
            .pending
            .retain(|p| !(p.op == op && p.channel == channel && p.dst == dst));
    }

    /// Resets the peer's heartbeat-miss counter; returns true when the
    /// peer was dormant (expired earlier) and is now answering again.
    fn note_peer_alive(&self, peer_runtime: u32, peer_host: HostId) -> bool {
        let mut cp = self.control.lock();
        cp.misses.insert(peer_runtime, 0);
        match cp.dormant.iter().position(|h| *h == peer_host) {
            Some(pos) => {
                cp.dormant.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// (Re-)announces every locally subscribed channel to `peer` — with
    /// retransmission, so the announcements survive a lossy control path.
    fn announce_subscriptions(&self, peer: HostId) {
        for channel in self.dispatcher.local_channels() {
            self.send_control_logged(ControlOp::Subscribe, channel, peer);
        }
    }

    /// One round of control-plane upkeep, driven from the kernel-UDP
    /// datapath's polling iteration: due retransmissions, heartbeats,
    /// peer expiry, and dormant-peer probing.  Returns whether anything
    /// was actually done (a merely non-empty pending list between
    /// deadlines is not work, so manual polling loops can settle).
    // insane-lint: cold-path -- periodic control upkeep, deadline-gated
    fn control_tick(&self) -> bool {
        let cfg = self.config.control;
        let now = Instant::now();
        let mut to_send: Vec<(ControlOp, u32, HostId)> = Vec::new();
        let mut expired: Vec<u32> = Vec::new();
        {
            let mut cp = self.control.lock();
            // Due retransmissions, with exponential backoff; exhausted
            // announcements are abandoned loudly.
            let mut i = 0;
            while i < cp.pending.len() {
                if now < cp.pending[i].next_at {
                    i += 1;
                    continue;
                }
                if cp.pending[i].attempts >= cfg.max_attempts {
                    let p = cp.pending.swap_remove(i);
                    self.stats.control_timeouts.fetch_add(1, Ordering::Relaxed);
                    crate::warn(&format!(
                        "host {:?}: abandoning control {:?} (channel {}) toward {:?} after {} attempts",
                        self.host, p.op, p.channel, p.dst, p.attempts
                    ));
                    continue;
                }
                let p = &mut cp.pending[i];
                p.attempts += 1;
                p.backoff = (p.backoff * 2).min(Duration::from_millis(100));
                p.next_at = now + p.backoff;
                self.stats
                    .control_retransmits
                    .fetch_add(1, Ordering::Relaxed);
                to_send.push((p.op, p.channel, p.dst));
                i += 1;
            }
            // Heartbeat round: beat every peer, advance miss counters,
            // expire the silent, probe the dormant.
            if now >= cp.next_heartbeat {
                cp.next_heartbeat = now + cfg.heartbeat_interval;
                for (peer_runtime, peer_host) in self.dispatcher.peers() {
                    let misses = cp.misses.entry(peer_runtime).or_insert(0);
                    *misses += 1;
                    if *misses > cfg.miss_threshold {
                        cp.misses.remove(&peer_runtime);
                        expired.push(peer_runtime);
                    } else {
                        self.stats.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                        to_send.push((ControlOp::Heartbeat, 0, peer_host));
                    }
                }
                for &host in &cp.dormant {
                    to_send.push((ControlOp::Hello, 0, host));
                }
            }
        }
        let did = !to_send.is_empty() || !expired.is_empty();
        for peer_runtime in expired {
            let Some(host) = self.dispatcher.remove_peer(peer_runtime) else {
                continue;
            };
            self.stats.peer_expiries.fetch_add(1, Ordering::Relaxed);
            crate::warn(&format!(
                "host {:?}: peer runtime {peer_runtime} on {host:?} missed {} heartbeats — expired; probing for recovery",
                self.host, self.config.control.miss_threshold
            ));
            let mut cp = self.control.lock();
            // Stop retransmitting toward the dead peer; probe instead.
            cp.pending.retain(|p| p.dst != host);
            if !cp.dormant.contains(&host) {
                cp.dormant.push(host);
            }
        }
        for (op, channel, dst) in to_send {
            if let Err(e) = self.send_control_raw(op, channel, dst) {
                self.stats
                    .control_send_failures
                    .fetch_add(1, Ordering::Relaxed);
                crate::warn(&format!(
                    "host {:?}: control {op:?} (channel {channel}) toward {dst:?} failed: {e}",
                    self.host
                ));
            }
        }
        did
    }

    // insane-lint: cold-path -- control messages are rare by design
    fn handle_control(&self, msg: &InboundMsg) {
        self.stats.control_messages.fetch_add(1, Ordering::Relaxed);
        let payload = &msg.store.bytes()[msg.payload_offset..];
        let Some((op, peer_host, peer_mask)) = decode_control(payload) else {
            self.stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let peer_runtime = msg.hdr.src_runtime;
        // Any control message proves the peer alive.
        let recovered = self.note_peer_alive(peer_runtime, peer_host);
        let new = self.dispatcher.add_peer(peer_runtime, peer_host, peer_mask);
        if new {
            for plugin in &self.plugins {
                plugin.on_peer(peer_host);
            }
            if recovered {
                self.stats.peers_recovered.fetch_add(1, Ordering::Relaxed);
                crate::warn(&format!(
                    "host {:?}: peer runtime {peer_runtime} on {peer_host:?} recovered",
                    self.host
                ));
            }
        }
        match op {
            ControlOp::Hello => {
                self.send_control_logged(ControlOp::HelloAck, 0, peer_host);
                // Always re-announce, not only to new peers: the sender
                // may have expired us and dropped every subscription we
                // held, and a Hello is how it asks for a re-sync.
                self.announce_subscriptions(peer_host);
            }
            ControlOp::HelloAck => {
                self.ack_pending(ControlOp::Hello, 0, peer_host);
                if new {
                    self.announce_subscriptions(peer_host);
                }
            }
            ControlOp::Subscribe => {
                self.dispatcher
                    .subscribe_remote(msg.hdr.channel, peer_runtime);
                self.send_control_logged(ControlOp::SubscribeAck, msg.hdr.channel, peer_host);
            }
            ControlOp::SubscribeAck => {
                self.ack_pending(ControlOp::Subscribe, msg.hdr.channel, peer_host);
            }
            ControlOp::Unsubscribe => {
                self.dispatcher
                    .unsubscribe_remote(msg.hdr.channel, peer_runtime);
            }
            ControlOp::Heartbeat => {
                if new {
                    // A peer we had expired is beating again before our
                    // probe reached it: a Hello makes both sides re-sync
                    // their subscription state.
                    self.send_control_logged(ControlOp::Hello, 0, peer_host);
                    self.announce_subscriptions(peer_host);
                }
            }
        }
    }

    /// The transmit half of one datapath iteration across all its
    /// shards (used by [`Runtime::poll_transmit`]).
    pub(crate) fn poll_datapath_tx(&self, idx: usize) -> bool {
        let mut did = false;
        for shard in 0..self.shards[idx].len() {
            let mut scratch = self.shards[idx][shard].scratch.lock();
            did |= self.poll_tx_inner(idx, shard, &mut scratch);
        }
        did
    }

    /// One polling iteration of one datapath: every shard in turn, each
    /// using its stored scratch.  This is the manual-drive path; the
    /// per-shard scratch mutex doubles as the serializer for concurrent
    /// manual callers (polling threads use private scratches instead).
    pub(crate) fn poll_datapath(&self, idx: usize) -> bool {
        let mut did = false;
        for shard in 0..self.shards[idx].len() {
            let mut scratch = self.shards[idx][shard].scratch.lock();
            did |= self.poll_datapath_shard(idx, shard, &mut scratch);
        }
        did
    }

    /// One polling iteration of one shard of one datapath: TX drain →
    /// schedule → send, then RX → dispatch.  Returns whether any work
    /// was done.
    ///
    /// Allocation-free on the hot path: all intermediate buffers live
    /// in the caller's scratch area and are reused across iterations.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- idx/shard are produced by the spawn loop that sized these arrays
    pub(crate) fn poll_datapath_shard(
        &self,
        idx: usize,
        shard: usize,
        scratch: &mut Scratch,
    ) -> bool {
        // Pick up published control-state snapshots: one atomic load
        // each per iteration, no lock, no RMW (DESIGN.md §12).  A new
        // routing table invalidates the per-channel cache derived from
        // the previous one — without this, a cache entry keyed only on
        // the channel could keep routing messages by a displaced table.
        if self.dispatcher.refresh(&mut scratch.routing) {
            scratch.cached_channel = None;
        }
        self.tunables.refresh(&mut scratch.tunables);
        scratch.burst_filled = false;

        // Health probe: detect datapath up/down transitions and migrate
        // traffic accordingly (self-healing, §6 of DESIGN.md).  The
        // compare-exchange makes the transition single-shot even when
        // several shards observe it concurrently.
        let down = self.fabric.device_down(self.health_eps[idx]);
        let mut did = false;
        if self.plugin_down[idx]
            .compare_exchange(!down, down, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            did = true;
            self.note_datapath_transition(idx, down);
        }

        did |= self.poll_tx_inner(idx, shard, scratch);

        // Control-plane upkeep rides on the kernel-UDP datapath's first
        // shard — the same path control messages travel.
        if idx == self.udp_idx && shard == 0 {
            did |= self.control_tick();
        }

        did |= self.poll_rx_inner(idx, shard, scratch, down);

        // Adaptive burst controller: a burst that filled anywhere this
        // iteration doubles the budget toward the ceiling (amortizing
        // per-burst overheads under load); a fully idle iteration
        // halves it toward the floor (bounding the latency cost of a
        // stale oversized burst).  Partial work leaves it unchanged.
        let cell = &self.shards[idx][shard].burst;
        let current = cell.load(Ordering::Relaxed);
        let next = if scratch.burst_filled {
            (current.saturating_mul(2)).min(scratch.tunables.burst_max)
        } else if !did {
            (current / 2).max(scratch.tunables.burst_min)
        } else {
            current
        };
        if next != current {
            cell.store(next, Ordering::Relaxed);
        }

        did
    }

    /// RX half of one shard's polling iteration: claim the device, fan
    /// inbound messages to their owning shards, then dispatch this
    /// shard's own inbox (Fig. 4, steps 3-4).
    // insane-lint: allow-fn(hot-path-panic) -- idx/shard/owner indices bounded by the spawn-time shard layout
    // insane-lint: allow-fn(hot-path-block) -- rx_claim is try_lock; inbox mutexes guard O(burst) handoffs and are never nested
    // insane-lint: allow-fn(hot-path-alloc) -- inbox deques grow to the burst watermark once, then reuse capacity
    fn poll_rx_inner(&self, idx: usize, shard: usize, scratch: &mut Scratch, down: bool) -> bool {
        let nshards = self.shards[idx].len();
        let burst = self.shards[idx][shard].burst.load(Ordering::Relaxed);
        let mut did = false;

        // A downed accelerated device cannot receive; kernel UDP keeps
        // polling so the control plane can observe recovery.
        let device_pollable = !down || idx == self.udp_idx;

        // The device is polled by whichever shard claims it first —
        // never concurrently.  Per-channel order is preserved because
        // inbox pushes happen under the claim (in device arrival
        // order), each inbox is FIFO, and only the owning shard
        // dispatches a channel's messages.
        if device_pollable {
            if let Some(_claim) = self.rx_claim[idx].try_lock() {
                scratch.inbound.clear();
                self.plugins[idx].poll_rx(&mut scratch.inbound, burst);
                if !scratch.inbound.is_empty() {
                    did = true;
                    scratch.burst_filled |= scratch.inbound.len() >= burst;
                    if nshards == 1 {
                        self.hops.charge_batch(scratch.inbound.len() as u64);
                    } else {
                        // Sharded RX adds a real handoff (device poller
                        // → owner inbox); charge the queue-touch here
                        // and the per-token costs at dispatch, on the
                        // owning shard.
                        self.hops.charge_batch(0);
                        if scratch.rx_buckets.len() < nshards {
                            scratch.rx_buckets.resize_with(nshards, Vec::new);
                        }
                    }
                    let mut inbound = std::mem::take(&mut scratch.inbound);
                    let mut rx_data = 0u64;
                    for msg in inbound.drain(..) {
                        if msg.hdr.kind == MessageKind::Control {
                            self.handle_control(&msg);
                            continue;
                        }
                        self.stats.rx_messages.fetch_add(1, Ordering::Relaxed);
                        if nshards == 1 {
                            rx_data += 1;
                            self.dispatch_inbound(
                                msg,
                                &scratch.routing,
                                &mut scratch.inbound_sinks,
                            );
                        } else {
                            // Bucket by owning shard; each inbox mutex
                            // is then taken once per burst below, not
                            // once per message.
                            let owner = shard::shard_of_channel(msg.hdr.channel, nshards);
                            scratch.rx_buckets[owner].push(msg);
                        }
                    }
                    if nshards == 1 {
                        self.dp_tel[idx][shard].on_rx(rx_data);
                    } else {
                        for (owner, bucket) in scratch.rx_buckets.iter_mut().enumerate() {
                            if bucket.is_empty() {
                                continue;
                            }
                            self.shards[idx][owner]
                                .rx_inbox
                                .lock()
                                .extend(bucket.drain(..));
                        }
                    }
                    scratch.inbound = inbound;
                }
            }
        }

        if nshards > 1 {
            // Drain this shard's inbox into the scratch buffer (bounded
            // by the burst) and dispatch outside the inbox lock.
            scratch.inbound.clear();
            {
                let mut inbox = self.shards[idx][shard].rx_inbox.lock();
                for _ in 0..burst {
                    match inbox.pop_front() {
                        Some(msg) => scratch.inbound.push(msg),
                        None => break,
                    }
                }
            }
            if !scratch.inbound.is_empty() {
                did = true;
                scratch.burst_filled |= scratch.inbound.len() >= burst;
                self.hops.charge_batch(scratch.inbound.len() as u64);
                let mut inbound = std::mem::take(&mut scratch.inbound);
                let dispatched = inbound.len() as u64;
                for msg in inbound.drain(..) {
                    self.dispatch_inbound(msg, &scratch.routing, &mut scratch.inbound_sinks);
                }
                self.dp_tel[idx][shard].on_rx(dispatched);
                scratch.inbound = inbound;
            }
        }
        did
    }

    /// TX drain → schedule → send for one shard of one datapath.
    // insane-lint: allow-fn(hot-path-panic) -- stream index/modulo guarded by nstreams > 0; shard indices bounded at spawn
    // insane-lint: allow-fn(hot-path-block) -- scheduler mutex is per-shard; contended only by rare divert/control paths
    fn poll_tx_inner(&self, idx: usize, shard: usize, scratch: &mut Scratch) -> bool {
        let plugin = &self.plugins[idx];
        let tech = plugin.technology();
        let nshards = self.shards[idx].len();
        let burst = self.shards[idx][shard].burst.load(Ordering::Relaxed);
        let mut did = false;

        // 0. Refresh the stream snapshot only when the registry changed
        //    (filtered down to the streams this shard owns).
        let version = self.streams.version();
        if scratch.streams_version != version {
            self.streams
                .snapshot_for(tech, shard, nshards, &mut scratch.streams);
            scratch.streams_version = version;
        }

        // 1. Drain emitted tokens from this shard's streams (Fig. 4,
        //    step 2).  The drain starts at a rotating cursor and the
        //    stream that fills the burst goes to the back of the
        //    rotation: a fixed snapshot-order drain would let an
        //    early saturating stream permanently starve later ones.
        scratch.requests.clear();
        let nstreams = scratch.streams.len();
        if nstreams > 0 {
            let start = scratch.drain_cursor % nstreams;
            for offset in 0..nstreams {
                let i = (start + offset) % nstreams;
                let budget = burst - scratch.requests.len();
                scratch.streams[i]
                    .tx
                    .pop_burst(&mut scratch.requests, budget);
                if scratch.requests.len() >= burst {
                    scratch.drain_cursor = (i + 1) % nstreams;
                    break;
                }
            }
        }
        if !scratch.requests.is_empty() {
            did = true;
            scratch.burst_filled |= scratch.requests.len() >= burst;
            self.hops.charge_batch(scratch.requests.len() as u64);
            let now = Instant::now();
            let mut requests = std::mem::take(&mut scratch.requests);
            for req in requests.drain(..) {
                self.process_tx(idx, shard, req, now, scratch);
            }
            scratch.requests = requests;
        }

        // A downed accelerated datapath sends nothing; whatever reached
        // this shard's scheduler (including what step 1 just enqueued)
        // evacuates to the kernel-UDP fallback instead.
        if idx != self.udp_idx && self.plugin_down[idx].load(Ordering::Relaxed) {
            did |= self.divert_shard(idx, shard);
            return did;
        }

        // 2. Release scheduled messages to the device (opportunistic
        //    batching: everything ready goes as one burst).  Time-aware
        //    schedulers clamp the burst to the frames the remaining gate
        //    window can still carry (never below 1, so a fully gated
        //    pass still records its deferrals), and report per-class
        //    deferral counts for telemetry.
        scratch.ready.clear();
        let deferred = {
            let mut sched = self.shards[idx][shard].scheduler.lock();
            let now = Instant::now();
            let clamped = match sched.window_budget(now) {
                Some(budget) => burst.min(budget.max(1)),
                None => burst,
            };
            sched.dequeue_ready(&mut scratch.ready, clamped, now);
            sched.take_gate_deferrals()
        };
        let deferred_total: u64 = deferred.iter().sum();
        if deferred_total > 0 {
            self.stats
                .gate_deferrals
                .fetch_add(deferred_total, Ordering::Relaxed);
            self.dp_tel[idx][shard].on_gate_deferred(&deferred);
        }
        if !scratch.ready.is_empty() {
            did = true;
            scratch.burst_filled |= scratch.ready.len() >= burst;
            let mut wire_scratch = std::mem::take(&mut scratch.wire);
            wire_scratch.clear();
            // Outcome boards are completed through the highest sequence
            // per board; the common case is one message per poll, so a
            // tiny inline scan beats a map.
            let mut boards_scratch = std::mem::take(&mut scratch.boards);
            boards_scratch.clear();
            for bundle in scratch.ready.drain(..) {
                match bundle.msgs {
                    WireMsgs::One(msg) => wire_scratch.push(msg),
                    WireMsgs::Many(msgs) => wire_scratch.extend(msgs),
                }
                boards_scratch.push((bundle.outcome, bundle.seq));
            }
            let wire_count = wire_scratch.len() as u64;
            let sent = plugin.send_burst(&mut wire_scratch);
            scratch.wire = wire_scratch;
            match sent {
                Ok(_) => {
                    self.stats
                        .tx_messages
                        .fetch_add(wire_count, Ordering::Relaxed);
                    self.dp_tel[idx][shard].on_tx(wire_count);
                    for (board, seq) in boards_scratch.drain(..) {
                        board.complete_through(seq);
                    }
                }
                Err(_) => {
                    for (board, seq) in boards_scratch.drain(..) {
                        board.fail(seq, "datapath send failure");
                    }
                }
            }
            scratch.boards = boards_scratch;
        }

        did
    }

    /// Handles one emitted message: local forwarding plus scheduling for
    /// every subscribed remote runtime.  Routing comes from the shard's
    /// routing snapshot (`scratch.routing`), via the per-channel cache
    /// when consecutive messages share a channel — the cache is
    /// invalidated whenever `poll_datapath_shard` refreshes the
    /// snapshot, so it can never outlive the table it was built from.
    ///
    /// All scheduler enqueues stay on shard `shard` — of this datapath
    /// or of the kernel-UDP fallback — so everything a stream emits
    /// (native, fallback, or later diverted) flows through one shard
    /// per datapath and per-stream order survives every path.
    // insane-lint: allow-fn(hot-path-panic) -- remotes[0] guarded by emptiness/len checks; idx/shard bounded at spawn
    // insane-lint: allow-fn(hot-path-block) -- scheduler mutex is per-shard; contended only by rare divert/control paths
    // insane-lint: allow-fn(hot-path-alloc) -- multi-destination fan-out allocates per-owner views; the single-remote fast path stays allocation-free
    fn process_tx(
        &self,
        idx: usize,
        shard: usize,
        req: TxRequest,
        now: Instant,
        scratch: &mut Scratch,
    ) {
        let plugin = &self.plugins[idx];
        if scratch.cached_channel != Some(req.channel) {
            scratch
                .routing
                .local_sinks_into(req.channel, &mut scratch.sinks);
            scratch
                .routing
                .remote_targets_into(req.channel, &mut scratch.remotes);
            scratch.cached_channel = Some(req.channel);
        }
        let sinks = &scratch.sinks;
        let remotes = &mut scratch.remotes;
        if sinks.is_empty() && remotes.is_empty() {
            // Nobody is listening anywhere: drop (datagram semantics).
            let _ = self.pools.release(req.token);
            req.outcome.complete_through(req.seq);
            return;
        }

        let (frag_index, frag_count, total_len, wire_seq) =
            req.frag.unwrap_or((0, 1, req.payload_len as u32, req.seq));

        // Frame in place when the message goes on a wire.
        let mut wire_start = 0;
        let token = if remotes.is_empty() {
            req.token
        } else {
            let mut guard = match self.pools.redeem(req.token) {
                Ok(g) => g,
                Err(_) => {
                    req.outcome.fail(req.seq, "stale token");
                    return;
                }
            };
            let hdr = InsaneHeader {
                kind: MessageKind::Data,
                traffic_class: req.class.value(),
                channel: req.channel,
                src_runtime: self.config.runtime_id,
                seq: wire_seq,
                frag_index,
                frag_count,
                total_len,
                timestamp_ns: req.emit_ns,
            };
            match plugin.frame(&mut guard, &hdr, req.payload_len, remotes[0].0) {
                Ok(start) => wire_start = start,
                Err(_) => {
                    req.outcome.fail(req.seq, "framing failure");
                    return;
                }
            }
            guard.into_token()
        };

        // One view per owner: each remote destination plus (optionally)
        // the local delivery group.
        let base = match self.pools.view(token) {
            Ok(v) => v,
            Err(_) => {
                req.outcome.fail(req.seq, "stale token");
                return;
            }
        };

        // Peers that lack this stream's technology are reached over the
        // universal kernel-UDP datapath instead: the INSANE header always
        // sits at the same slot offset, so the already-framed slot is
        // transmitted from that offset on (§5.2's best-effort spirit,
        // applied per destination).
        let stream_tech = self.plugins[idx].technology();
        let udp_idx = self.udp_idx;
        // While this datapath is down, route new traffic straight to the
        // kernel-UDP fallback (QoS demoted to best effort below).
        let this_down = idx != udp_idx && self.plugin_down[idx].load(Ordering::Relaxed);

        // Fast path: exactly one remote, no co-located sinks.
        if sinks.is_empty() && remotes.len() == 1 {
            let (dst, peer_mask) = remotes[0];
            let native = mask_supports(peer_mask, stream_tech) && !this_down;
            if mask_supports(peer_mask, stream_tech) && this_down {
                self.stats.failover_messages.fetch_add(1, Ordering::Relaxed);
            }
            let (sched_idx, msg, class) = if native {
                (
                    idx,
                    WireMsg {
                        view: base,
                        wire_start,
                        dst,
                    },
                    req.class,
                )
            } else {
                (
                    udp_idx,
                    WireMsg {
                        view: base,
                        wire_start: crate::INSANE_HDR_OFFSET,
                        dst,
                    },
                    if this_down {
                        TrafficClass::BEST_EFFORT
                    } else {
                        req.class
                    },
                )
            };
            self.dp_tel[sched_idx][shard].on_scheduled(1);
            self.shards[sched_idx][shard].scheduler.lock().enqueue(
                OutboundBundle {
                    msgs: WireMsgs::One(msg),
                    outcome: req.outcome,
                    seq: req.seq,
                    tenant: req.tenant,
                },
                class,
                now,
            );
            return;
        }

        let owners = remotes.len() + usize::from(!sinks.is_empty());
        let mut views: Vec<SlotView> = Vec::with_capacity(owners);
        for _ in 1..owners {
            views.push(base.clone_ref());
        }
        views.push(base);

        if !sinks.is_empty() {
            let Some(local_view) = views.pop() else {
                req.outcome.fail(req.seq, "internal view accounting");
                return;
            };
            let local_view = Arc::new(local_view);
            let now_ns = epoch_ns();
            let meta = MessageMeta {
                channel: req.channel,
                seq: wire_seq,
                src_runtime: self.config.runtime_id,
                frag: (frag_index, frag_count, total_len),
                emit_ns: req.emit_ns,
                wire_start_ns: now_ns,
                wire_ns: 0,
                dispatched_ns: now_ns,
            };
            self.stats
                .local_deliveries
                .fetch_add(sinks.len() as u64, Ordering::Relaxed);
            // Fan-out cost: one hop charge covering every sink delivery.
            self.hops.charge_batch(sinks.len() as u64);
            let delivery = Arc::new(Delivery {
                store: PayloadStore::View(local_view),
                offset: PAYLOAD_OFFSET,
                len: req.payload_len,
                meta,
            });
            for sink in sinks.iter() {
                if !sink.deliver(Arc::clone(&delivery)) {
                    self.stats.sink_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
            if remotes.is_empty() {
                req.outcome.complete_through(req.seq);
                return;
            }
        }

        // Fan-out consumes the cached remote list; invalidate the cache.
        let mut native: Vec<WireMsg> = Vec::new();
        let mut fallback: Vec<WireMsg> = Vec::new();
        for (view, (dst, peer_mask)) in views.into_iter().zip(remotes.drain(..)) {
            if mask_supports(peer_mask, stream_tech) && !this_down {
                native.push(WireMsg {
                    view,
                    wire_start,
                    dst,
                });
            } else {
                if mask_supports(peer_mask, stream_tech) {
                    self.stats.failover_messages.fetch_add(1, Ordering::Relaxed);
                }
                fallback.push(WireMsg {
                    view,
                    wire_start: crate::INSANE_HDR_OFFSET,
                    dst,
                });
            }
        }
        scratch.cached_channel = None;
        if !native.is_empty() {
            self.dp_tel[idx][shard].on_scheduled(native.len() as u64);
            self.shards[idx][shard].scheduler.lock().enqueue(
                OutboundBundle {
                    msgs: WireMsgs::Many(native),
                    outcome: Arc::clone(&req.outcome),
                    seq: req.seq,
                    tenant: req.tenant,
                },
                req.class,
                now,
            );
        }
        if !fallback.is_empty() {
            self.dp_tel[udp_idx][shard].on_scheduled(fallback.len() as u64);
            self.shards[udp_idx][shard].scheduler.lock().enqueue(
                OutboundBundle {
                    msgs: WireMsgs::Many(fallback),
                    outcome: req.outcome,
                    seq: req.seq,
                    tenant: req.tenant,
                },
                if this_down {
                    TrafficClass::BEST_EFFORT
                } else {
                    req.class
                },
                now,
            );
        }
    }

    /// Evacuates everything queued on every shard of datapath `idx`
    /// onto the kernel-UDP fallback (down transitions must not strand
    /// traffic on any shard).
    // insane-lint: cold-path -- datapath failover, not steady state
    fn divert_scheduler(&self, idx: usize) -> bool {
        let mut did = false;
        for shard in 0..self.shards[idx].len() {
            did |= self.divert_shard(idx, shard);
        }
        did
    }

    /// Evacuates one shard's scheduler onto the *same shard* of the
    /// kernel-UDP fallback: wire offsets are rewritten to the
    /// technology-neutral INSANE header and QoS is demoted to best
    /// effort (the fallback honours delivery, not the original class
    /// guarantees).  Shard-preserving evacuation keeps diverted
    /// messages ordered with the stream's later fallback traffic,
    /// which `process_tx` also pins to the stream's shard.
    // insane-lint: cold-path -- datapath failover, not steady state
    fn divert_shard(&self, idx: usize, shard: usize) -> bool {
        let mut evacuated: Vec<OutboundBundle> = Vec::new();
        self.shards[idx][shard]
            .scheduler
            .lock()
            .drain_all(&mut evacuated);
        if evacuated.is_empty() {
            return false;
        }
        let now = Instant::now();
        let mut diverted = 0u64;
        let mut udp = self.shards[self.udp_idx][shard].scheduler.lock();
        for mut bundle in evacuated {
            match &mut bundle.msgs {
                WireMsgs::One(msg) => {
                    msg.wire_start = crate::INSANE_HDR_OFFSET;
                    diverted += 1;
                }
                WireMsgs::Many(msgs) => {
                    for msg in msgs.iter_mut() {
                        msg.wire_start = crate::INSANE_HDR_OFFSET;
                    }
                    diverted += msgs.len() as u64;
                }
            }
            udp.enqueue(bundle, TrafficClass::BEST_EFFORT, now);
        }
        drop(udp);
        self.stats
            .failover_messages
            .fetch_add(diverted, Ordering::Relaxed);
        self.dp_tel[self.udp_idx][shard].on_scheduled(diverted);
        true
    }

    /// Reacts to a datapath health transition: warn, count, and (on the
    /// way down) evacuate the queued traffic to the kernel-UDP fallback.
    // insane-lint: cold-path -- single-shot up/down transition handler
    fn note_datapath_transition(&self, idx: usize, down: bool) {
        let tech = self.plugins[idx].technology();
        if idx == self.udp_idx {
            // The universal fallback itself has no fallback; the control
            // plane's retransmissions ride out the outage.
            crate::warn(&format!(
                "host {:?}: kernel UDP datapath is {}",
                self.host,
                if down { "down" } else { "back up" }
            ));
            return;
        }
        if down {
            self.stats.failover_events.fetch_add(1, Ordering::Relaxed);
            crate::warn(&format!(
                "host {:?}: {tech:?} datapath down — failing over to kernel UDP (QoS demoted to best effort)",
                self.host
            ));
            self.divert_scheduler(idx);
        } else {
            self.stats.failback_events.fetch_add(1, Ordering::Relaxed);
            crate::warn(&format!(
                "host {:?}: {tech:?} datapath recovered — migrating traffic back",
                self.host
            ));
        }
    }

    /// Dispatches one received message to the channel's local sinks,
    /// resolved against the caller's routing snapshot (`sinks` is a
    /// caller scratch buffer).
    // insane-lint: allow-fn(hot-path-alloc) -- one Arc<Delivery> per inbound message is the zero-copy sharing contract with sinks
    fn dispatch_inbound(
        &self,
        msg: InboundMsg,
        table: &RoutingTable,
        sinks: &mut Vec<Arc<SinkShared>>,
    ) {
        table.local_sinks_into(msg.hdr.channel, sinks);
        if sinks.is_empty() {
            return; // no subscriber on this host anymore
        }
        let payload_len = msg.store.bytes().len().saturating_sub(msg.payload_offset);
        let meta = MessageMeta {
            channel: msg.hdr.channel,
            seq: msg.hdr.seq,
            src_runtime: msg.hdr.src_runtime,
            frag: (msg.hdr.frag_index, msg.hdr.frag_count, msg.hdr.total_len),
            emit_ns: msg.hdr.timestamp_ns,
            wire_start_ns: msg.received_ns.saturating_sub(msg.wire_ns),
            wire_ns: msg.wire_ns,
            dispatched_ns: epoch_ns(),
        };
        if sinks.len() > 1 {
            // Extra fan-out hops beyond the one already charged for the
            // inbound burst.
            self.hops.charge_batch(sinks.len() as u64 - 1);
        }
        let delivery = Arc::new(Delivery {
            store: msg.store,
            offset: msg.payload_offset,
            len: payload_len,
            meta,
        });
        for sink in sinks.iter() {
            if !sink.deliver(Arc::clone(&delivery)) {
                self.stats.sink_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Polls a set of runtimes until none reports work for `settle` straight
/// rounds (or `max_iters` is hit).  Useful for tests and the manual-drive
/// benchmark harness to let control-plane traffic converge.
pub fn poll_until_quiescent(runtimes: &[&Runtime], max_iters: usize) {
    let settle = 8;
    let mut quiet = 0;
    for _ in 0..max_iters {
        let mut did = false;
        for rt in runtimes {
            did |= rt.poll_once();
        }
        if did {
            quiet = 0;
        } else {
            quiet += 1;
            if quiet >= settle {
                return;
            }
        }
    }
}
