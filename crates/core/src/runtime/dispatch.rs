//! Channel dispatching and the peer/subscription tables.
//!
//! The dispatcher answers the two questions on every message path:
//! *which co-located sinks want this channel* (local shared-memory
//! forwarding, §5.1) and *which remote runtimes subscribed to it* (so
//! sources only transmit to interested peers, the way the paper's
//! LunarMoM "forwards the messages to the reachable remote INSANE
//! runtimes", §7.1).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use insane_fabric::HostId;
use parking_lot::RwLock;

use crate::runtime::internals::SinkShared;

/// Control-plane operation codes (first payload byte of a control
/// message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ControlOp {
    /// Peer announcement: "I exist at host H"; triggers a reply.
    Hello = 1,
    /// Reply to Hello (no further reply).
    HelloAck = 2,
    /// Subscribe to the channel in the header.
    Subscribe = 3,
    /// Unsubscribe from the channel in the header.
    Unsubscribe = 4,
    /// Acknowledges a Subscribe for the channel in the header, so the
    /// subscriber can stop retransmitting it.
    SubscribeAck = 5,
    /// Periodic liveness beacon; receiving any control message (this one
    /// included) resets the sender's miss counter.
    Heartbeat = 6,
}

impl ControlOp {
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ControlOp::Hello),
            2 => Some(ControlOp::HelloAck),
            3 => Some(ControlOp::Subscribe),
            4 => Some(ControlOp::Unsubscribe),
            5 => Some(ControlOp::SubscribeAck),
            6 => Some(ControlOp::Heartbeat),
            _ => None,
        }
    }

    /// Whether the receiver answers this op with an ack (and the sender
    /// therefore retransmits it until acked).
    pub(crate) fn needs_ack(self) -> bool {
        matches!(self, ControlOp::Hello | ControlOp::Subscribe)
    }
}

/// Bitmask of the technologies a runtime has attached (bit = the
/// technology's position in [`insane_fabric::Technology::ALL`]).
pub(crate) type TechMask = u8;

/// Bit position of a technology within a [`TechMask`] (Table 1 order,
/// matching [`insane_fabric::Technology::ALL`]).
fn tech_bit(tech: insane_fabric::Technology) -> u8 {
    use insane_fabric::Technology;
    match tech {
        Technology::KernelUdp => 0,
        Technology::Xdp => 1,
        Technology::Dpdk => 2,
        Technology::Rdma => 3,
    }
}

/// Computes the capability mask for a set of attached technologies.
pub(crate) fn tech_mask(techs: &[insane_fabric::Technology]) -> TechMask {
    let mut mask = 0u8;
    for &tech in techs {
        mask |= 1 << tech_bit(tech);
    }
    mask
}

/// Whether `mask` advertises `tech`.
pub(crate) fn mask_supports(mask: TechMask, tech: insane_fabric::Technology) -> bool {
    mask & (1 << tech_bit(tech)) != 0
}

/// Serialized control payload: `[op, host_index:u32le, tech_mask]`.
pub(crate) fn encode_control(op: ControlOp, host: HostId, mask: TechMask) -> [u8; 6] {
    let mut buf = [0u8; 6];
    buf[0] = op as u8;
    buf[1..5].copy_from_slice(&host.index().to_le_bytes());
    buf[5] = mask;
    buf
}

/// Decodes a control payload.
pub(crate) fn decode_control(payload: &[u8]) -> Option<(ControlOp, HostId, TechMask)> {
    if payload.len() < 6 {
        return None;
    }
    let op = ControlOp::from_byte(payload[0])?;
    let host = u32::from_le_bytes(payload[1..5].try_into().ok()?);
    Some((op, HostId::from_index(host), payload[5]))
}

/// The dispatcher: local sink registry + remote subscription table +
/// peer table.
///
/// A version counter is bumped on every mutation so polling threads can
/// cache per-channel routing decisions and revalidate them cheaply.
#[derive(Debug, Default)]
pub(crate) struct Dispatcher {
    /// channel → co-located sinks.
    local: RwLock<HashMap<u32, Vec<Arc<SinkShared>>>>,
    /// channel → subscribed remote runtime ids.
    remote_subs: RwLock<HashMap<u32, HashSet<u32>>>,
    /// remote runtime id → (host, attached-technology mask).
    peers: RwLock<HashMap<u32, (HostId, TechMask)>>,
    /// Bumped on every routing-relevant mutation.
    version: std::sync::atomic::AtomicU64,
}

impl Dispatcher {
    /// Current routing version.
    pub(crate) fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump(&self) {
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Registers a sink; returns true when it is the first local sink on
    /// its channel (the caller then announces the subscription).
    pub(crate) fn add_sink(&self, sink: Arc<SinkShared>) -> bool {
        let mut local = self.local.write();
        let sinks = local.entry(sink.channel).or_default();
        let first = sinks.is_empty();
        sinks.push(sink);
        drop(local);
        self.bump();
        first
    }

    /// Unregisters a sink; returns true when its channel now has no local
    /// sinks (the caller then withdraws the subscription).
    pub(crate) fn remove_sink(&self, sink_id: u64, channel: u32) -> bool {
        let mut local = self.local.write();
        let mut emptied = false;
        if let Some(sinks) = local.get_mut(&channel) {
            sinks.retain(|s| s.id != sink_id);
            if sinks.is_empty() {
                local.remove(&channel);
                emptied = true;
            }
        }
        drop(local);
        self.bump();
        emptied
    }

    /// Co-located sinks for a channel (snapshot).
    #[cfg(test)]
    pub(crate) fn local_sinks(&self, channel: u32) -> Vec<Arc<SinkShared>> {
        self.local
            .read()
            .get(&channel)
            .map(|v| v.to_vec())
            .unwrap_or_default()
    }

    /// Fills `out` with the co-located sinks for `channel` (reuses the
    /// caller's buffer: the polling hot path must not allocate).
    // insane-lint: allow-fn(hot-path-block) -- read lock taken only on routing-cache miss (version change); writers are control-plane only
    pub(crate) fn local_sinks_into(&self, channel: u32, out: &mut Vec<Arc<SinkShared>>) {
        out.clear();
        if let Some(sinks) = self.local.read().get(&channel) {
            out.extend(sinks.iter().cloned());
        }
    }

    /// Whether any local sink listens on `channel` (cheaper than
    /// [`Dispatcher::local_sinks`]).
    #[cfg(test)]
    pub(crate) fn has_local_sinks(&self, channel: u32) -> bool {
        self.local.read().contains_key(&channel)
    }

    /// All channels with local sinks (for subscription re-announcement).
    pub(crate) fn local_channels(&self) -> Vec<u32> {
        self.local.read().keys().copied().collect()
    }

    /// Hosts of remote runtimes subscribed to `channel`.
    #[cfg(test)]
    pub(crate) fn remote_targets(&self, channel: u32) -> Vec<(HostId, TechMask)> {
        let mut out = Vec::new();
        self.remote_targets_into(channel, &mut out);
        out
    }

    /// Fills `out` with the hosts (and capability masks) of remote
    /// runtimes subscribed to `channel` (allocation-free hot path).
    // insane-lint: allow-fn(hot-path-block) -- read locks taken only on routing-cache miss (version change); writers are control-plane only
    pub(crate) fn remote_targets_into(&self, channel: u32, out: &mut Vec<(HostId, TechMask)>) {
        out.clear();
        let subs = self.remote_subs.read();
        let Some(runtimes) = subs.get(&channel) else {
            return;
        };
        let peers = self.peers.read();
        out.extend(runtimes.iter().filter_map(|id| peers.get(id).copied()));
    }

    /// Records a peer; returns true if it was unknown.
    pub(crate) fn add_peer(&self, runtime_id: u32, host: HostId, mask: TechMask) -> bool {
        let new = self
            .peers
            .write()
            .insert(runtime_id, (host, mask))
            .is_none();
        self.bump();
        new
    }

    /// Forgets a peer and every subscription it held; returns its host if
    /// it was known.  Called when the failure detector expires the peer.
    pub(crate) fn remove_peer(&self, runtime_id: u32) -> Option<HostId> {
        let removed = self.peers.write().remove(&runtime_id);
        if removed.is_some() {
            let mut subs = self.remote_subs.write();
            subs.retain(|_, set| {
                set.remove(&runtime_id);
                !set.is_empty()
            });
            drop(subs);
            self.bump();
        }
        removed.map(|(host, _)| host)
    }

    /// Known peers (runtime id, host).
    pub(crate) fn peers(&self) -> Vec<(u32, HostId)> {
        self.peers
            .read()
            .iter()
            .map(|(id, (h, _))| (*id, *h))
            .collect()
    }

    /// Records a remote subscription.
    pub(crate) fn subscribe_remote(&self, channel: u32, runtime_id: u32) {
        self.remote_subs
            .write()
            .entry(channel)
            .or_default()
            .insert(runtime_id);
        self.bump();
    }

    /// Withdraws a remote subscription.
    pub(crate) fn unsubscribe_remote(&self, channel: u32, runtime_id: u32) {
        let mut subs = self.remote_subs.write();
        if let Some(set) = subs.get_mut(&channel) {
            set.remove(&runtime_id);
            if set.is_empty() {
                subs.remove(&channel);
            }
        }
        drop(subs);
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_queues::MpmcQueue;
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::AtomicU64;

    fn sink(id: u64, channel: u32) -> Arc<SinkShared> {
        Arc::new(SinkShared {
            id,
            channel,
            queue: MpmcQueue::new(4),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            callback: None,
            closed: std::sync::atomic::AtomicBool::new(false),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            telemetry: crate::telemetry::SinkTel::none(),
        })
    }

    #[test]
    fn control_encoding_roundtrip() {
        for op in [
            ControlOp::Hello,
            ControlOp::HelloAck,
            ControlOp::Subscribe,
            ControlOp::Unsubscribe,
            ControlOp::SubscribeAck,
            ControlOp::Heartbeat,
        ] {
            let host = HostId::from_index(42);
            let bytes = encode_control(op, host, 0b0101);
            assert_eq!(decode_control(&bytes), Some((op, host, 0b0101)));
        }
        assert_eq!(decode_control(&[9, 0, 0, 0, 0, 0]), None);
        assert_eq!(decode_control(&[1, 0]), None);
    }

    #[test]
    fn only_announcements_need_acks() {
        assert!(ControlOp::Hello.needs_ack());
        assert!(ControlOp::Subscribe.needs_ack());
        assert!(!ControlOp::HelloAck.needs_ack());
        assert!(!ControlOp::SubscribeAck.needs_ack());
        assert!(!ControlOp::Heartbeat.needs_ack());
        assert!(!ControlOp::Unsubscribe.needs_ack());
    }

    #[test]
    fn remove_peer_purges_its_subscriptions() {
        let d = Dispatcher::default();
        d.add_peer(10, HostId::from_index(1), 0xF);
        d.add_peer(11, HostId::from_index(2), 0xF);
        d.subscribe_remote(5, 10);
        d.subscribe_remote(5, 11);
        d.subscribe_remote(6, 10);
        let before = d.version();
        assert_eq!(d.remove_peer(10), Some(HostId::from_index(1)));
        assert!(d.version() > before, "routing caches must invalidate");
        assert_eq!(d.remote_targets(5), vec![(HostId::from_index(2), 0xF)]);
        assert!(d.remote_targets(6).is_empty());
        assert_eq!(d.remove_peer(10), None, "already gone");
        assert_eq!(d.peers().len(), 1);
    }

    #[test]
    fn tech_masks_roundtrip() {
        use insane_fabric::Technology;
        let mask = tech_mask(&[Technology::KernelUdp, Technology::Dpdk]);
        assert!(mask_supports(mask, Technology::KernelUdp));
        assert!(mask_supports(mask, Technology::Dpdk));
        assert!(!mask_supports(mask, Technology::Xdp));
        assert!(!mask_supports(mask, Technology::Rdma));
        let all = tech_mask(&Technology::ALL);
        for t in Technology::ALL {
            assert!(mask_supports(all, t));
        }
    }

    #[test]
    fn first_and_last_sink_transitions() {
        let d = Dispatcher::default();
        assert!(d.add_sink(sink(1, 7)), "first sink on the channel");
        assert!(!d.add_sink(sink(2, 7)), "second sink is not first");
        assert_eq!(d.local_sinks(7).len(), 2);
        assert!(!d.remove_sink(1, 7), "one sink remains");
        assert!(d.remove_sink(2, 7), "channel now empty");
        assert!(!d.has_local_sinks(7));
    }

    #[test]
    fn remote_subscriptions_resolve_to_hosts() {
        let d = Dispatcher::default();
        d.add_peer(10, HostId::from_index(1), 0xF);
        d.add_peer(11, HostId::from_index(2), 0xF);
        d.subscribe_remote(5, 10);
        d.subscribe_remote(5, 11);
        let mut targets = d.remote_targets(5);
        targets.sort();
        assert_eq!(
            targets,
            vec![(HostId::from_index(1), 0xF), (HostId::from_index(2), 0xF)]
        );
        d.unsubscribe_remote(5, 10);
        assert_eq!(d.remote_targets(5), vec![(HostId::from_index(2), 0xF)]);
        d.unsubscribe_remote(5, 11);
        assert!(d.remote_targets(5).is_empty());
    }

    #[test]
    fn unknown_peer_subscriptions_resolve_to_nothing() {
        let d = Dispatcher::default();
        d.subscribe_remote(5, 99);
        assert!(d.remote_targets(5).is_empty(), "no host for runtime 99");
    }

    #[test]
    fn add_peer_reports_novelty() {
        let d = Dispatcher::default();
        assert!(d.add_peer(1, HostId::from_index(0), 0x1));
        assert!(!d.add_peer(1, HostId::from_index(0), 0x1));
        assert_eq!(d.peers().len(), 1);
    }
}
