//! Channel dispatching and the peer/subscription tables.
//!
//! The dispatcher answers the two questions on every message path:
//! *which co-located sinks want this channel* (local shared-memory
//! forwarding, §5.1) and *which remote runtimes subscribed to it* (so
//! sources only transmit to interested peers, the way the paper's
//! LunarMoM "forwards the messages to the reachable remote INSANE
//! runtimes", §7.1).
//!
//! The tables are read on every TX and RX dispatch by every polling
//! shard, and mutated only by the control plane.  They therefore live in
//! an immutable [`RoutingTable`] published through a
//! [`SnapshotCell`]: writers clone the current table, mutate the clone,
//! and publish it with one atomic pointer swap; polling shards refresh a
//! per-shard cached `Arc<RoutingTable>` once per poll iteration (a
//! single atomic load when nothing changed) and dispatch every message
//! of the burst against that snapshot with **zero** lock acquisitions
//! (DESIGN.md §12).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use insane_fabric::HostId;
use insane_queues::SnapshotCell;
use parking_lot::Mutex;

use crate::runtime::internals::SinkShared;

/// Control-plane operation codes (first payload byte of a control
/// message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ControlOp {
    /// Peer announcement: "I exist at host H"; triggers a reply.
    Hello = 1,
    /// Reply to Hello (no further reply).
    HelloAck = 2,
    /// Subscribe to the channel in the header.
    Subscribe = 3,
    /// Unsubscribe from the channel in the header.
    Unsubscribe = 4,
    /// Acknowledges a Subscribe for the channel in the header, so the
    /// subscriber can stop retransmitting it.
    SubscribeAck = 5,
    /// Periodic liveness beacon; receiving any control message (this one
    /// included) resets the sender's miss counter.
    Heartbeat = 6,
}

impl ControlOp {
    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ControlOp::Hello),
            2 => Some(ControlOp::HelloAck),
            3 => Some(ControlOp::Subscribe),
            4 => Some(ControlOp::Unsubscribe),
            5 => Some(ControlOp::SubscribeAck),
            6 => Some(ControlOp::Heartbeat),
            _ => None,
        }
    }

    /// Whether the receiver answers this op with an ack (and the sender
    /// therefore retransmits it until acked).
    pub(crate) fn needs_ack(self) -> bool {
        matches!(self, ControlOp::Hello | ControlOp::Subscribe)
    }
}

/// Bitmask of the technologies a runtime has attached (bit = the
/// technology's position in [`insane_fabric::Technology::ALL`]).
pub(crate) type TechMask = u8;

/// Bit position of a technology within a [`TechMask`] (Table 1 order,
/// matching [`insane_fabric::Technology::ALL`]).
fn tech_bit(tech: insane_fabric::Technology) -> u8 {
    use insane_fabric::Technology;
    match tech {
        Technology::KernelUdp => 0,
        Technology::Xdp => 1,
        Technology::Dpdk => 2,
        Technology::Rdma => 3,
    }
}

/// Computes the capability mask for a set of attached technologies.
pub(crate) fn tech_mask(techs: &[insane_fabric::Technology]) -> TechMask {
    let mut mask = 0u8;
    for &tech in techs {
        mask |= 1 << tech_bit(tech);
    }
    mask
}

/// Whether `mask` advertises `tech`.
pub(crate) fn mask_supports(mask: TechMask, tech: insane_fabric::Technology) -> bool {
    mask & (1 << tech_bit(tech)) != 0
}

/// Serialized control payload: `[op, host_index:u32le, tech_mask]`.
pub(crate) fn encode_control(op: ControlOp, host: HostId, mask: TechMask) -> [u8; 6] {
    let mut buf = [0u8; 6];
    buf[0] = op as u8;
    buf[1..5].copy_from_slice(&host.index().to_le_bytes());
    buf[5] = mask;
    buf
}

/// Decodes a control payload.
pub(crate) fn decode_control(payload: &[u8]) -> Option<(ControlOp, HostId, TechMask)> {
    if payload.len() < 6 {
        return None;
    }
    let op = ControlOp::from_byte(payload[0])?;
    let host = u32::from_le_bytes(payload[1..5].try_into().ok()?);
    Some((op, HostId::from_index(host), payload[5]))
}

/// One immutable generation of the routing state.
///
/// Published whole through the dispatcher's [`SnapshotCell`]; never
/// mutated in place after publication, so any `Arc<RoutingTable>` a
/// polling shard holds is internally consistent by construction — a
/// reader can never observe a peer without its subscriptions' view or
/// vice versa ("no half-applied table").
#[derive(Debug, Default, Clone)]
pub(crate) struct RoutingTable {
    /// channel → co-located sinks.
    local: HashMap<u32, Vec<Arc<SinkShared>>>,
    /// channel → subscribed remote runtime ids.
    remote_subs: HashMap<u32, HashSet<u32>>,
    /// remote runtime id → (host, attached-technology mask).
    peers: HashMap<u32, (HostId, TechMask)>,
    /// channel → resolved remote targets (the `remote_subs` ⋈ `peers`
    /// join, precomputed at publish time so the per-message read is one
    /// hash lookup instead of a join).
    remote: HashMap<u32, Vec<(HostId, TechMask)>>,
}

impl RoutingTable {
    /// Fills `out` with the co-located sinks for `channel` (reuses the
    /// caller's buffer: the polling hot path must not allocate).
    pub(crate) fn local_sinks_into(&self, channel: u32, out: &mut Vec<Arc<SinkShared>>) {
        out.clear();
        if let Some(sinks) = self.local.get(&channel) {
            out.extend(sinks.iter().cloned());
        }
    }

    /// Fills `out` with the hosts (and capability masks) of remote
    /// runtimes subscribed to `channel` (allocation-free hot path).
    pub(crate) fn remote_targets_into(&self, channel: u32, out: &mut Vec<(HostId, TechMask)>) {
        out.clear();
        if let Some(targets) = self.remote.get(&channel) {
            out.extend(targets.iter().copied());
        }
    }

    /// Recomputes the `remote` join after `remote_subs`/`peers` changed.
    /// Publish-time cost, paid once per control-plane mutation.
    fn rebuild_remote(&mut self) {
        self.remote.clear();
        for (channel, runtimes) in &self.remote_subs {
            let targets: Vec<(HostId, TechMask)> = runtimes
                .iter()
                .filter_map(|id| self.peers.get(id).copied())
                .collect();
            if !targets.is_empty() {
                self.remote.insert(*channel, targets);
            }
        }
    }
}

/// The dispatcher: local sink registry + remote subscription table +
/// peer table, published as immutable [`RoutingTable`] snapshots.
///
/// A version counter is bumped on every mutation so polling threads can
/// cache per-channel routing decisions and revalidate them cheaply.
#[derive(Debug)]
pub(crate) struct Dispatcher {
    /// The current routing generation (see [`RoutingTable`]).
    table: SnapshotCell<RoutingTable>,
    /// Serializes writers: each mutation clones the current table,
    /// edits the clone, and publishes it; the mutex makes that
    /// read-modify-write sequence atomic across control-plane threads.
    write: Mutex<()>,
    /// Bumped on every routing-relevant mutation.
    version: std::sync::atomic::AtomicU64,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self {
            table: SnapshotCell::new(RoutingTable::default()),
            write: Mutex::new(()),
            version: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Dispatcher {
    /// Current routing version (test observability: the hot path keys
    /// off pointer identity via [`Dispatcher::refresh`], not versions).
    #[cfg(test)]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump(&self) {
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// The current routing snapshot (pinned; two atomic RMWs).
    #[cfg(test)]
    pub(crate) fn snapshot(&self) -> Arc<RoutingTable> {
        self.table.load()
    }

    /// Refreshes a cached snapshot; returns true when it changed.  The
    /// unchanged case — every poll iteration without a control-plane
    /// mutation — is a single atomic load.
    pub(crate) fn refresh(&self, cached: &mut Arc<RoutingTable>) -> bool {
        self.table.refresh(cached)
    }

    /// Clone-mutate-publish: runs `f` on a private copy of the current
    /// table, then publishes the copy as the new generation.  Writers
    /// serialize on `self.write`; readers never block.
    fn mutate<R>(&self, f: impl FnOnce(&mut RoutingTable) -> R) -> R {
        let guard = self.write.lock();
        let mut next = (*self.table.load()).clone();
        let result = f(&mut next);
        self.table.publish(Arc::new(next));
        drop(guard);
        self.bump();
        result
    }

    /// Registers a sink; returns true when it is the first local sink on
    /// its channel (the caller then announces the subscription).
    pub(crate) fn add_sink(&self, sink: Arc<SinkShared>) -> bool {
        self.mutate(|t| {
            let sinks = t.local.entry(sink.channel).or_default();
            let first = sinks.is_empty();
            sinks.push(sink);
            first
        })
    }

    /// Unregisters a sink; returns true when its channel now has no local
    /// sinks (the caller then withdraws the subscription).
    pub(crate) fn remove_sink(&self, sink_id: u64, channel: u32) -> bool {
        self.mutate(|t| {
            let mut emptied = false;
            if let Some(sinks) = t.local.get_mut(&channel) {
                sinks.retain(|s| s.id != sink_id);
                if sinks.is_empty() {
                    t.local.remove(&channel);
                    emptied = true;
                }
            }
            emptied
        })
    }

    /// Co-located sinks for a channel (snapshot).
    #[cfg(test)]
    pub(crate) fn local_sinks(&self, channel: u32) -> Vec<Arc<SinkShared>> {
        self.table
            .load()
            .local
            .get(&channel)
            .map(|v| v.to_vec())
            .unwrap_or_default()
    }

    /// Whether any local sink listens on `channel` (cheaper than
    /// [`Dispatcher::local_sinks`]).
    #[cfg(test)]
    pub(crate) fn has_local_sinks(&self, channel: u32) -> bool {
        self.table.load().local.contains_key(&channel)
    }

    /// All channels with local sinks (for subscription re-announcement).
    pub(crate) fn local_channels(&self) -> Vec<u32> {
        self.table.load().local.keys().copied().collect()
    }

    /// Hosts of remote runtimes subscribed to `channel`.
    #[cfg(test)]
    pub(crate) fn remote_targets(&self, channel: u32) -> Vec<(HostId, TechMask)> {
        let mut out = Vec::new();
        self.table.load().remote_targets_into(channel, &mut out);
        out
    }

    /// Records a peer; returns true if it was unknown.
    pub(crate) fn add_peer(&self, runtime_id: u32, host: HostId, mask: TechMask) -> bool {
        self.mutate(|t| {
            let new = t.peers.insert(runtime_id, (host, mask)).is_none();
            t.rebuild_remote();
            new
        })
    }

    /// Forgets a peer and every subscription it held; returns its host if
    /// it was known.  Called when the failure detector expires the peer.
    pub(crate) fn remove_peer(&self, runtime_id: u32) -> Option<HostId> {
        self.mutate(|t| {
            let removed = t.peers.remove(&runtime_id);
            if removed.is_some() {
                t.remote_subs.retain(|_, set| {
                    set.remove(&runtime_id);
                    !set.is_empty()
                });
                t.rebuild_remote();
            }
            removed.map(|(host, _)| host)
        })
    }

    /// Known peers (runtime id, host).
    pub(crate) fn peers(&self) -> Vec<(u32, HostId)> {
        self.table
            .load()
            .peers
            .iter()
            .map(|(id, (h, _))| (*id, *h))
            .collect()
    }

    /// Records a remote subscription.
    pub(crate) fn subscribe_remote(&self, channel: u32, runtime_id: u32) {
        self.mutate(|t| {
            t.remote_subs.entry(channel).or_default().insert(runtime_id);
            t.rebuild_remote();
        });
    }

    /// Withdraws a remote subscription.
    pub(crate) fn unsubscribe_remote(&self, channel: u32, runtime_id: u32) {
        self.mutate(|t| {
            if let Some(set) = t.remote_subs.get_mut(&channel) {
                set.remove(&runtime_id);
                if set.is_empty() {
                    t.remote_subs.remove(&channel);
                }
            }
            t.rebuild_remote();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insane_queues::MpmcQueue;
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::AtomicU64;

    fn sink(id: u64, channel: u32) -> Arc<SinkShared> {
        Arc::new(SinkShared {
            id,
            channel,
            queue: MpmcQueue::new(4),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            callback: None,
            closed: std::sync::atomic::AtomicBool::new(false),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            telemetry: crate::telemetry::SinkTel::none(),
        })
    }

    #[test]
    fn control_encoding_roundtrip() {
        for op in [
            ControlOp::Hello,
            ControlOp::HelloAck,
            ControlOp::Subscribe,
            ControlOp::Unsubscribe,
            ControlOp::SubscribeAck,
            ControlOp::Heartbeat,
        ] {
            let host = HostId::from_index(42);
            let bytes = encode_control(op, host, 0b0101);
            assert_eq!(decode_control(&bytes), Some((op, host, 0b0101)));
        }
        assert_eq!(decode_control(&[9, 0, 0, 0, 0, 0]), None);
        assert_eq!(decode_control(&[1, 0]), None);
    }

    #[test]
    fn only_announcements_need_acks() {
        assert!(ControlOp::Hello.needs_ack());
        assert!(ControlOp::Subscribe.needs_ack());
        assert!(!ControlOp::HelloAck.needs_ack());
        assert!(!ControlOp::SubscribeAck.needs_ack());
        assert!(!ControlOp::Heartbeat.needs_ack());
        assert!(!ControlOp::Unsubscribe.needs_ack());
    }

    #[test]
    fn remove_peer_purges_its_subscriptions() {
        let d = Dispatcher::default();
        d.add_peer(10, HostId::from_index(1), 0xF);
        d.add_peer(11, HostId::from_index(2), 0xF);
        d.subscribe_remote(5, 10);
        d.subscribe_remote(5, 11);
        d.subscribe_remote(6, 10);
        let before = d.version();
        assert_eq!(d.remove_peer(10), Some(HostId::from_index(1)));
        assert!(d.version() > before, "routing caches must invalidate");
        assert_eq!(d.remote_targets(5), vec![(HostId::from_index(2), 0xF)]);
        assert!(d.remote_targets(6).is_empty());
        assert_eq!(d.remove_peer(10), None, "already gone");
        assert_eq!(d.peers().len(), 1);
    }

    #[test]
    fn tech_masks_roundtrip() {
        use insane_fabric::Technology;
        let mask = tech_mask(&[Technology::KernelUdp, Technology::Dpdk]);
        assert!(mask_supports(mask, Technology::KernelUdp));
        assert!(mask_supports(mask, Technology::Dpdk));
        assert!(!mask_supports(mask, Technology::Xdp));
        assert!(!mask_supports(mask, Technology::Rdma));
        let all = tech_mask(&Technology::ALL);
        for t in Technology::ALL {
            assert!(mask_supports(all, t));
        }
    }

    #[test]
    fn first_and_last_sink_transitions() {
        let d = Dispatcher::default();
        assert!(d.add_sink(sink(1, 7)), "first sink on the channel");
        assert!(!d.add_sink(sink(2, 7)), "second sink is not first");
        assert_eq!(d.local_sinks(7).len(), 2);
        assert!(!d.remove_sink(1, 7), "one sink remains");
        assert!(d.remove_sink(2, 7), "channel now empty");
        assert!(!d.has_local_sinks(7));
    }

    #[test]
    fn remote_subscriptions_resolve_to_hosts() {
        let d = Dispatcher::default();
        d.add_peer(10, HostId::from_index(1), 0xF);
        d.add_peer(11, HostId::from_index(2), 0xF);
        d.subscribe_remote(5, 10);
        d.subscribe_remote(5, 11);
        let mut targets = d.remote_targets(5);
        targets.sort();
        assert_eq!(
            targets,
            vec![(HostId::from_index(1), 0xF), (HostId::from_index(2), 0xF)]
        );
        d.unsubscribe_remote(5, 10);
        assert_eq!(d.remote_targets(5), vec![(HostId::from_index(2), 0xF)]);
        d.unsubscribe_remote(5, 11);
        assert!(d.remote_targets(5).is_empty());
    }

    #[test]
    fn unknown_peer_subscriptions_resolve_to_nothing() {
        let d = Dispatcher::default();
        d.subscribe_remote(5, 99);
        assert!(d.remote_targets(5).is_empty(), "no host for runtime 99");
    }

    #[test]
    fn add_peer_reports_novelty() {
        let d = Dispatcher::default();
        assert!(d.add_peer(1, HostId::from_index(0), 0x1));
        assert!(!d.add_peer(1, HostId::from_index(0), 0x1));
        assert_eq!(d.peers().len(), 1);
    }

    /// One control-plane mutation on the peer/subscription tables.
    #[derive(Debug, Clone, Copy)]
    enum TableOp {
        AddPeer(u32),
        RemovePeer(u32),
        Subscribe(u32, u32),
        Unsubscribe(u32, u32),
    }

    fn apply(d: &Dispatcher, op: TableOp) {
        match op {
            TableOp::AddPeer(id) => {
                // Host and mask are derived from the id, so a torn table
                // mixing two generations would also show a host/mask
                // mismatch in `canonical`'s output.
                d.add_peer(id, HostId::from_index(id + 100), (id % 15) as TechMask | 1);
            }
            TableOp::RemovePeer(id) => {
                d.remove_peer(id);
            }
            TableOp::Subscribe(ch, id) => d.subscribe_remote(ch, id),
            TableOp::Unsubscribe(ch, id) => d.unsubscribe_remote(ch, id),
        }
    }

    /// Canonical rendering of one routing generation: sorted peers,
    /// sorted subscription sets, sorted resolved targets.
    fn canonical(table: &RoutingTable) -> String {
        let mut peers: Vec<_> = table
            .peers
            .iter()
            .map(|(id, (h, m))| (*id, h.index(), *m))
            .collect();
        peers.sort_unstable();
        let mut subs: Vec<_> = table
            .remote_subs
            .iter()
            .map(|(ch, set)| {
                let mut ids: Vec<_> = set.iter().copied().collect();
                ids.sort_unstable();
                (*ch, ids)
            })
            .collect();
        subs.sort();
        let mut remote: Vec<_> = table
            .remote
            .iter()
            .map(|(ch, targets)| {
                let mut t: Vec<_> = targets.iter().map(|(h, m)| (h.index(), *m)).collect();
                t.sort_unstable();
                (*ch, t)
            })
            .collect();
        remote.sort();
        format!("{peers:?}|{subs:?}|{remote:?}")
    }

    use proptest::{prop_assert, prop_assert_eq};

    proptest::proptest! {
        /// Live-reload semantics: while a writer thread applies an
        /// arbitrary sequence of peer/subscription mutations, concurrent
        /// dispatch reads only ever observe a table that is the complete
        /// result of some prefix of those mutations — never a
        /// half-applied intermediate (e.g. a peer inserted but the
        /// resolved-target join not yet rebuilt).  The valid states are
        /// precomputed by replaying the same ops sequentially on a
        /// private dispatcher.
        #[test]
        fn concurrent_dispatch_never_sees_a_half_applied_table(
            raw_ops in proptest::collection::vec((0u8..4, 0u32..4, 0u32..3), 1..24)
        ) {
            let ops: Vec<TableOp> = raw_ops
                .iter()
                .map(|&(kind, id, ch)| match kind {
                    0 => TableOp::AddPeer(id),
                    1 => TableOp::RemovePeer(id),
                    2 => TableOp::Subscribe(ch, id),
                    _ => TableOp::Unsubscribe(ch, id),
                })
                .collect();

            // Replay sequentially: the canonical form after every
            // complete op is a valid observable state.
            let model = Dispatcher::default();
            let mut valid: std::collections::HashSet<String> =
                [canonical(&model.snapshot())].into();
            for &op in &ops {
                apply(&model, op);
                valid.insert(canonical(&model.snapshot()));
            }

            let shared = Arc::new(Dispatcher::default());
            let writer = {
                let d = Arc::clone(&shared);
                let ops = ops.clone();
                std::thread::spawn(move || {
                    for &op in &ops {
                        apply(&d, op);
                    }
                })
            };
            // Concurrent dispatch: sample snapshots (both via a fresh
            // pinned load and via the hot-path cached-refresh pattern)
            // while the writer is publishing.
            let mut cached = shared.snapshot();
            let mut targets = Vec::new();
            for _ in 0..64 {
                shared.refresh(&mut cached);
                let seen = canonical(&cached);
                prop_assert!(
                    valid.contains(&seen),
                    "observed a table state produced by no prefix of ops: {seen}"
                );
                // A routed message must resolve against the same
                // generation end to end.
                for ch in 0..3u32 {
                    cached.remote_targets_into(ch, &mut targets);
                    for (host, mask) in &targets {
                        let id = host.index().wrapping_sub(100);
                        prop_assert_eq!(
                            *mask,
                            (id % 15) as TechMask | 1,
                            "target carries a mask from a different generation"
                        );
                    }
                }
            }
            writer.join().expect("writer thread panicked");
            shared.refresh(&mut cached);
            prop_assert_eq!(
                canonical(&cached),
                canonical(&model.snapshot()),
                "final table diverged from the sequential replay"
            );
        }
    }
}
