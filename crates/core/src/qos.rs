//! QoS policies and the policy→technology mapping (§5.2).
//!
//! A stream carries exactly three quality options — the paper keeps the
//! policy surface deliberately minimal:
//!
//! 1. [`Acceleration`] — does this flow need a fast datapath at all?
//! 2. [`ResourceUsage`] — may the mapping burn CPU cores (DPDK's busy
//!    polling) to get it?
//! 3. [`TimeSensitivity`] — does the flow need the deterministic TSN
//!    scheduler instead of FIFO?
//!
//! The mapping runs *when the stream is created*, against the set of
//! technologies actually present on the current host, so the same
//! application binary binds to different datapaths on different edge
//! nodes.  Policies are hints: when nothing better is available the
//! mapping falls back to kernel networking and flags the fallback so the
//! middleware can warn the user.

use insane_fabric::Technology;
use insane_tsn::TrafficClass;

/// Datapath-acceleration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acceleration {
    /// Regular kernel-based networking suffices.
    #[default]
    None,
    /// The flow benefits from a kernel-bypassing/accelerated datapath.
    Preferred,
}

/// Resource-consumption policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResourceUsage {
    /// Resource usage is a concern: avoid technologies that pin cores to
    /// busy polling.
    #[default]
    Constrained,
    /// Resource usage is not a concern (e.g. a dedicated edge box).
    Unconstrained,
}

/// Time-sensitivity policy: selects the packet scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSensitivity {
    /// FIFO scheduling, packets leave as soon as emitted (default).
    #[default]
    BestEffort,
    /// IEEE 802.1Qbv time-aware scheduling in the given traffic class.
    TimeSensitive {
        /// Traffic class for the TSN gate program (1–7 typical).
        class: TrafficClass,
    },
}

impl TimeSensitivity {
    /// Shorthand for the highest-priority time-critical class.
    pub fn time_critical() -> Self {
        TimeSensitivity::TimeSensitive {
            class: TrafficClass::TIME_CRITICAL,
        }
    }

    /// The traffic class this policy schedules under.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            TimeSensitivity::BestEffort => TrafficClass::BEST_EFFORT,
            TimeSensitivity::TimeSensitive { class } => *class,
        }
    }
}

/// The full per-stream QoS policy (Fig. 2's `options_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QosPolicy {
    /// Datapath acceleration policy.
    pub acceleration: Acceleration,
    /// Resource-consumption policy.
    pub resource_usage: ResourceUsage,
    /// Time-sensitivity policy.
    pub time_sensitivity: TimeSensitivity,
}

impl QosPolicy {
    /// The paper's "fast" configuration: accelerated, resources no
    /// concern (maps to DPDK when RDMA is absent).
    pub fn fast() -> Self {
        Self {
            acceleration: Acceleration::Preferred,
            resource_usage: ResourceUsage::Unconstrained,
            time_sensitivity: TimeSensitivity::BestEffort,
        }
    }

    /// The paper's "slow" configuration: kernel UDP.
    pub fn slow() -> Self {
        Self::default()
    }

    /// Accelerated but resource-frugal (maps to XDP when RDMA is absent).
    pub fn frugal() -> Self {
        Self {
            acceleration: Acceleration::Preferred,
            resource_usage: ResourceUsage::Constrained,
            time_sensitivity: TimeSensitivity::BestEffort,
        }
    }
}

/// Result of mapping a policy onto the technologies present at the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedPath {
    /// The chosen technology.
    pub technology: Technology,
    /// True when the policy asked for acceleration but none was
    /// available: INSANE proceeds best-effort and warns (§5.2).
    pub fallback: bool,
}

/// A pluggable policy→technology mapping (§5.2 allows a user-configured
/// strategy; [`DefaultMapping`] implements the paper's default).
pub trait MappingStrategy: Send + Sync {
    /// Chooses a technology for `policy` among `available` (never empty:
    /// kernel UDP is always present on a host).
    fn map(&self, policy: &QosPolicy, available: &[Technology]) -> MappedPath;
}

/// The paper's default strategy: no acceleration → kernel UDP;
/// acceleration → RDMA if present, else DPDK when resources are no
/// concern, else XDP; fall back to kernel UDP with a warning.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultMapping;

impl MappingStrategy for DefaultMapping {
    fn map(&self, policy: &QosPolicy, available: &[Technology]) -> MappedPath {
        let has = |t: Technology| available.contains(&t);
        match policy.acceleration {
            Acceleration::None => MappedPath {
                technology: Technology::KernelUdp,
                fallback: false,
            },
            Acceleration::Preferred => {
                if has(Technology::Rdma) {
                    return MappedPath {
                        technology: Technology::Rdma,
                        fallback: false,
                    };
                }
                let preference = match policy.resource_usage {
                    ResourceUsage::Unconstrained => [Technology::Dpdk, Technology::Xdp],
                    ResourceUsage::Constrained => [Technology::Xdp, Technology::Dpdk],
                };
                for tech in preference {
                    if has(tech) {
                        return MappedPath {
                            technology: tech,
                            fallback: false,
                        };
                    }
                }
                MappedPath {
                    technology: Technology::KernelUdp,
                    fallback: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Technology; 4] = [
        Technology::KernelUdp,
        Technology::Xdp,
        Technology::Dpdk,
        Technology::Rdma,
    ];

    fn map(policy: QosPolicy, available: &[Technology]) -> MappedPath {
        DefaultMapping.map(&policy, available)
    }

    #[test]
    fn no_acceleration_always_kernel() {
        let m = map(QosPolicy::slow(), &ALL);
        assert_eq!(m.technology, Technology::KernelUdp);
        assert!(!m.fallback);
    }

    #[test]
    fn rdma_wins_when_present() {
        // "RDMA is the best alternative" (§5.2) regardless of resources.
        for usage in [ResourceUsage::Constrained, ResourceUsage::Unconstrained] {
            let policy = QosPolicy {
                acceleration: Acceleration::Preferred,
                resource_usage: usage,
                time_sensitivity: TimeSensitivity::BestEffort,
            };
            assert_eq!(map(policy, &ALL).technology, Technology::Rdma);
        }
    }

    #[test]
    fn dpdk_when_resources_are_no_concern() {
        let available = [Technology::KernelUdp, Technology::Xdp, Technology::Dpdk];
        let m = map(QosPolicy::fast(), &available);
        assert_eq!(m.technology, Technology::Dpdk);
        assert!(!m.fallback);
    }

    #[test]
    fn xdp_when_resources_matter() {
        let available = [Technology::KernelUdp, Technology::Xdp, Technology::Dpdk];
        let m = map(QosPolicy::frugal(), &available);
        assert_eq!(m.technology, Technology::Xdp);
    }

    #[test]
    fn constrained_still_prefers_any_acceleration_over_kernel() {
        let available = [Technology::KernelUdp, Technology::Dpdk];
        let m = map(QosPolicy::frugal(), &available);
        assert_eq!(m.technology, Technology::Dpdk);
        assert!(!m.fallback);
    }

    #[test]
    fn fallback_to_kernel_warns() {
        let available = [Technology::KernelUdp];
        let m = map(QosPolicy::fast(), &available);
        assert_eq!(m.technology, Technology::KernelUdp);
        assert!(m.fallback, "must flag the best-effort fallback");
    }

    #[test]
    fn policy_presets_match_paper_configurations() {
        assert_eq!(QosPolicy::slow().acceleration, Acceleration::None);
        assert_eq!(
            QosPolicy::fast().resource_usage,
            ResourceUsage::Unconstrained
        );
        assert_eq!(
            QosPolicy::frugal().resource_usage,
            ResourceUsage::Constrained
        );
        assert_eq!(
            TimeSensitivity::time_critical().traffic_class(),
            TrafficClass::TIME_CRITICAL
        );
        assert_eq!(
            TimeSensitivity::BestEffort.traffic_class(),
            TrafficClass::BEST_EFFORT
        );
    }
}
