//! End-to-end tests of the INSANE middleware over the simulated fabric.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use insane_core::runtime::poll_until_quiescent;
use insane_core::{
    Acceleration, ChannelId, ConsumeMode, EmitOutcome, InsaneError, QosPolicy, ResourceUsage,
    Runtime, RuntimeConfig, SchedulerChoice, Session, ThreadingMode, TimeSensitivity,
};
use insane_fabric::{Fabric, Technology, TestbedProfile};

fn manual_config(id: u32) -> RuntimeConfig {
    RuntimeConfig::new(id).with_threading(ThreadingMode::Manual)
}

/// Two manually-driven runtimes on two hosts, already peered.
fn two_node_setup(techs: &[Technology]) -> (Fabric, Runtime, Runtime) {
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let rt_a = Runtime::start(manual_config(1).with_technologies(techs), &fabric, host_a).unwrap();
    let rt_b = Runtime::start(manual_config(2).with_technologies(techs), &fabric, host_b).unwrap();
    rt_a.add_peer(host_b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    (fabric, rt_a, rt_b)
}

fn drive_consume(runtimes: &[&Runtime], sink: &insane_core::Sink) -> insane_core::IncomingMessage {
    for _ in 0..200_000 {
        for rt in runtimes {
            rt.poll_once();
        }
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(msg) => return msg,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => panic!("consume failed: {e}"),
        }
    }
    panic!("message never arrived");
}

#[test]
fn local_source_to_sink_roundtrip() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let source = stream.create_source(ChannelId(7)).unwrap();
    let sink = stream.create_sink(ChannelId(7)).unwrap();

    let mut buf = source.get_buffer(11).unwrap();
    buf.copy_from_slice(b"hello local");
    let token = source.emit(buf).unwrap();
    assert_eq!(source.emit_outcome(token), EmitOutcome::Pending);

    let msg = drive_consume(&[&rt], &sink);
    assert_eq!(&*msg, b"hello local");
    assert_eq!(msg.meta().channel, 7);
    assert_eq!(source.emit_outcome(token), EmitOutcome::Completed);
    assert_eq!(rt.stats().local_deliveries, 1);
    assert_eq!(rt.stats().tx_messages, 0, "no wire involved");
    drop(msg);
    assert_eq!(rt.slots_in_use(), 0, "all slots returned");
}

#[test]
fn channels_are_isolated() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();
    let sink_same = stream.create_sink(ChannelId(1)).unwrap();
    let sink_other = stream.create_sink(ChannelId(2)).unwrap();

    let mut buf = source.get_buffer(3).unwrap();
    buf.copy_from_slice(b"abc");
    source.emit(buf).unwrap();
    let msg = drive_consume(&[&rt], &sink_same);
    assert_eq!(&*msg, b"abc");
    assert!(matches!(
        sink_other.consume(ConsumeMode::NonBlocking),
        Err(InsaneError::WouldBlock)
    ));
}

#[test]
fn remote_roundtrip_over_every_technology() {
    for (techs, policy, expect) in [
        (
            vec![Technology::KernelUdp],
            QosPolicy::slow(),
            Technology::KernelUdp,
        ),
        (
            vec![Technology::KernelUdp, Technology::Dpdk],
            QosPolicy::fast(),
            Technology::Dpdk,
        ),
        (
            vec![Technology::KernelUdp, Technology::Xdp],
            QosPolicy::frugal(),
            Technology::Xdp,
        ),
        (
            vec![Technology::KernelUdp, Technology::Rdma],
            QosPolicy::fast(),
            Technology::Rdma,
        ),
    ] {
        let (_fabric, rt_a, rt_b) = two_node_setup(&techs);
        let session_a = Session::connect(&rt_a).unwrap();
        let session_b = Session::connect(&rt_b).unwrap();
        let stream_a = session_a.create_stream(policy).unwrap();
        let stream_b = session_b.create_stream(policy).unwrap();
        assert_eq!(stream_a.technology(), expect, "mapping for {techs:?}");

        let sink = stream_b.create_sink(ChannelId(42)).unwrap();
        // Let the subscription reach the producer side.
        poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

        let source = stream_a.create_source(ChannelId(42)).unwrap();
        let mut buf = source.get_buffer(13).unwrap();
        buf.copy_from_slice(b"over the wire");
        source.emit(buf).unwrap();

        let msg = drive_consume(&[&rt_a, &rt_b], &sink);
        assert_eq!(&*msg, b"over the wire", "payload via {expect}");
        assert_eq!(msg.meta().src_runtime, 1);
        assert!(msg.breakdown().network_ns > 0, "wire time recorded");
        drop(msg);
        poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
        assert_eq!(rt_a.slots_in_use(), 0, "sender slots returned ({expect})");
    }
}

#[test]
fn fallback_stream_warns_and_still_works() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp]);
    let session = Session::connect(&rt_a).unwrap();
    let stream = session.create_stream(QosPolicy::fast()).unwrap();
    assert_eq!(stream.technology(), Technology::KernelUdp);
    assert!(stream.is_fallback());
    assert_eq!(rt_a.stats().fallback_streams, 1);

    // And it still carries data.
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sink = stream_b.create_sink(ChannelId(1)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream.create_source(ChannelId(1)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"ok");
    source.emit(buf).unwrap();
    let msg = drive_consume(&[&rt_a, &rt_b], &sink);
    assert_eq!(&*msg, b"ok");
}

#[test]
fn multiple_sinks_all_receive_without_copies() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp, Technology::Dpdk]);
    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sinks: Vec<_> = (0..4)
        .map(|_| stream_b.create_sink(ChannelId(9)).unwrap())
        .collect();
    // A co-located sink on the producer host as well.
    let local_sink = stream_a.create_sink(ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let source = stream_a.create_source(ChannelId(9)).unwrap();
    let mut buf = source.get_buffer(4).unwrap();
    buf.copy_from_slice(b"fan!");
    source.emit(buf).unwrap();

    for sink in &sinks {
        let msg = drive_consume(&[&rt_a, &rt_b], sink);
        assert_eq!(&*msg, b"fan!");
    }
    let msg = drive_consume(&[&rt_a, &rt_b], &local_sink);
    assert_eq!(&*msg, b"fan!");
    assert_eq!(
        rt_b.stats().rx_messages,
        1,
        "one wire message, four deliveries"
    );
}

#[test]
fn callback_sink_receives_on_polling_thread() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();

    let hits = Arc::new(AtomicUsize::new(0));
    let hits_cb = Arc::clone(&hits);
    let sink = stream
        .create_sink_with_callback(ChannelId(3), move |msg| {
            assert_eq!(&*msg, b"cb");
            hits_cb.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert!(matches!(
        sink.consume(ConsumeMode::NonBlocking),
        Err(InsaneError::CallbackSink)
    ));

    let source = stream.create_source(ChannelId(3)).unwrap();
    for _ in 0..5 {
        let mut buf = source.get_buffer(2).unwrap();
        buf.copy_from_slice(b"cb");
        source.emit(buf).unwrap();
    }
    poll_until_quiescent(&[&rt], 10_000);
    assert_eq!(hits.load(Ordering::SeqCst), 5);
    assert_eq!(sink.stats().received, 5);
}

#[test]
fn emit_without_any_listener_completes_and_releases() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();
    let mut buf = source.get_buffer(1).unwrap();
    buf.copy_from_slice(b"x");
    let token = source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt], 10_000);
    assert_eq!(source.emit_outcome(token), EmitOutcome::Completed);
    assert_eq!(rt.slots_in_use(), 0);
}

#[test]
fn oversized_payload_is_rejected_at_get_buffer() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::fast()).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();
    let max = source.max_payload();
    assert!(source.get_buffer(max).is_ok());
    assert!(matches!(
        source.get_buffer(max + 1),
        Err(InsaneError::PayloadTooLarge { .. })
    ));
}

#[test]
fn fragmentation_metadata_travels_with_messages() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp, Technology::Dpdk]);
    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sink = stream_b.create_sink(ChannelId(5)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream_a.create_source(ChannelId(5)).unwrap();

    for index in 0..3u16 {
        let mut buf = source.get_buffer(10).unwrap();
        buf.copy_from_slice(&[index as u8; 10]);
        source.emit_fragment(buf, index, 3, 30, 999).unwrap();
    }
    for _ in 0..3 {
        let msg = drive_consume(&[&rt_a, &rt_b], &sink);
        let (index, count, total) = msg.meta().frag;
        assert_eq!(count, 3);
        assert_eq!(total, 30);
        assert_eq!(msg.meta().seq, 999, "message id is the wire sequence");
        assert!(msg.meta().is_fragment());
        assert_eq!(&*msg, &[index as u8; 10]);
    }
}

#[test]
fn blocking_consume_with_threaded_runtime() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let rt_a = Runtime::start(
        RuntimeConfig::new(1).with_technologies(&[Technology::KernelUdp]),
        &fabric,
        host_a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        RuntimeConfig::new(2)
            .with_technologies(&[Technology::KernelUdp])
            .with_threading(ThreadingMode::Shared),
        &fabric,
        host_b,
    )
    .unwrap();
    rt_a.add_peer(host_b).unwrap();

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(77)).unwrap();
    // Give the control plane a moment on the running threads.
    std::thread::sleep(Duration::from_millis(50));

    let source = stream_a.create_source(ChannelId(77)).unwrap();
    let mut buf = source.get_buffer(7).unwrap();
    buf.copy_from_slice(b"blocked");
    source.emit(buf).unwrap();

    let msg = sink.consume(ConsumeMode::Blocking).unwrap();
    assert_eq!(&*msg, b"blocked");
    rt_a.shutdown();
    rt_b.shutdown();
}

#[test]
fn custom_thread_assignment_serves_all_datapaths() {
    // §5.3: "INSANE can be configured to run more than one plugin on a
    // thread".  One thread polls {UDP, XDP}, another polls {DPDK}; every
    // datapath keeps working, including ones not mentioned (folded in).
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let custom = ThreadingMode::Custom(vec![
        vec![Technology::KernelUdp, Technology::Xdp],
        vec![Technology::Dpdk],
        // RDMA deliberately unmentioned: must fold into thread 0.
    ]);
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&[
                Technology::KernelUdp,
                Technology::Xdp,
                Technology::Dpdk,
                Technology::Rdma,
            ])
            .with_threading(custom.clone())
    };
    let rt_a = Runtime::start(config(1), &fabric, host_a).unwrap();
    let rt_b = Runtime::start(config(2), &fabric, host_b).unwrap();
    rt_a.add_peer(host_b).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    for (qos, channel) in [
        (QosPolicy::slow(), ChannelId(61)),
        (QosPolicy::frugal(), ChannelId(62)),
        (QosPolicy::fast(), ChannelId(63)), // maps to RDMA (folded path)
    ] {
        let stream_a = session_a.create_stream(qos).unwrap();
        let stream_b = session_b.create_stream(qos).unwrap();
        let sink = stream_b.create_sink(channel).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let source = stream_a.create_source(channel).unwrap();
        let mut buf = source.get_buffer(4).unwrap();
        buf.copy_from_slice(&channel.0.to_le_bytes());
        source.emit(buf).unwrap();
        let msg = sink.consume(ConsumeMode::Blocking).unwrap();
        assert_eq!(
            &*msg,
            &channel.0.to_le_bytes(),
            "via {}",
            stream_a.technology()
        );
    }
    rt_a.shutdown();
    rt_b.shutdown();
}

#[test]
fn blocking_consume_on_manual_runtime_is_refused() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let sink = stream.create_sink(ChannelId(1)).unwrap();
    assert!(matches!(
        sink.consume(ConsumeMode::Blocking),
        Err(InsaneError::RuntimeNotStarted)
    ));
}

#[test]
fn unsubscribe_stops_remote_traffic() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp]);
    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(8)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let source = stream_a.create_source(ChannelId(8)).unwrap();
    let mut buf = source.get_buffer(1).unwrap();
    buf.copy_from_slice(b"1");
    source.emit(buf).unwrap();
    let msg = drive_consume(&[&rt_a, &rt_b], &sink);
    assert_eq!(&*msg, b"1");

    // Close the only sink: an UNSUB control message flows back.
    sink.close();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let tx_before = rt_a.stats().tx_messages;
    let mut buf = source.get_buffer(1).unwrap();
    buf.copy_from_slice(b"2");
    source.emit(buf).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    assert_eq!(
        rt_a.stats().tx_messages,
        tx_before,
        "no data message may leave after the last sink unsubscribed"
    );
}

#[test]
fn time_sensitive_stream_uses_tsn_scheduler() {
    // A TSN runtime with a long non-critical gate: time-critical traffic
    // must wait for its window, so delivery happens but takes at least
    // until the next critical window.
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let cfg = manual_config(1)
        .with_technologies(&[Technology::KernelUdp])
        .with_scheduler(SchedulerChoice::TimeAware {
            critical_window: Duration::from_millis(5),
            cycle: Duration::from_millis(50),
            guard_band: Duration::ZERO,
            frame_tx: Duration::ZERO,
        });
    let rt_a = Runtime::start(cfg, &fabric, host).unwrap();
    let rt_b = Runtime::start(
        manual_config(2).with_technologies(&[Technology::KernelUdp]),
        &fabric,
        host_b,
    )
    .unwrap();
    rt_a.add_peer(host_b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let policy = QosPolicy {
        acceleration: Acceleration::None,
        resource_usage: ResourceUsage::Constrained,
        time_sensitivity: TimeSensitivity::time_critical(),
    };
    let stream_a = session_a.create_stream(policy).unwrap();
    let stream_b = session_b.create_stream(policy).unwrap();
    let sink = stream_b.create_sink(ChannelId(4)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let source = stream_a.create_source(ChannelId(4)).unwrap();
    let mut buf = source.get_buffer(4).unwrap();
    buf.copy_from_slice(b"gate");
    source.emit(buf).unwrap();
    let msg = drive_consume(&[&rt_a, &rt_b], &sink);
    assert_eq!(&*msg, b"gate");
}

#[test]
fn tas_guard_band_reloads_and_counts_deferrals() {
    use insane_core::Tunables;
    // Best-effort traffic has a 5ms window per 50ms cycle.  A reloaded
    // 49ms guard band (valid: < cycle) exceeds that window, so nothing
    // best-effort may ever start — deterministic deferrals, no timing
    // races.  Dropping the guard releases the held frame.
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let cfg = manual_config(1)
        .with_technologies(&[Technology::KernelUdp])
        .with_scheduler(SchedulerChoice::TimeAware {
            critical_window: Duration::from_millis(45),
            cycle: Duration::from_millis(50),
            guard_band: Duration::ZERO,
            frame_tx: Duration::from_micros(1),
        });
    let rt_a = Runtime::start(cfg, &fabric, host_a).unwrap();
    let rt_b = Runtime::start(
        manual_config(2).with_technologies(&[Technology::KernelUdp]),
        &fabric,
        host_b,
    )
    .unwrap();
    rt_a.add_peer(host_b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::slow()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::slow()).unwrap();
    let sink = stream_b.create_sink(ChannelId(9)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    // A guard band at or beyond the cycle is rejected outright.
    let over = Tunables {
        tas_guard_band_ns: Some(50_000_000),
        ..Tunables::default()
    };
    assert!(rt_a.reload_tunables(over).is_err());

    // Arm the window-exceeding (but valid) guard, then emit.
    let blocked = Tunables {
        tas_guard_band_ns: Some(49_000_000),
        ..Tunables::default()
    };
    rt_a.reload_tunables(blocked).unwrap();
    let source = stream_a.create_source(ChannelId(9)).unwrap();
    let mut buf = source.get_buffer(4).unwrap();
    buf.copy_from_slice(b"held");
    source.emit(buf).unwrap();
    for _ in 0..200 {
        rt_a.poll_once();
        rt_b.poll_once();
    }
    assert!(
        rt_a.stats().gate_deferrals > 0,
        "a guard band wider than the open window must defer every pass"
    );
    assert!(
        matches!(
            sink.consume(ConsumeMode::NonBlocking),
            Err(InsaneError::WouldBlock)
        ),
        "the frame must still be held"
    );

    // Drop the guard: the held frame flows in its next window.
    let released = Tunables {
        tas_guard_band_ns: Some(0),
        ..Tunables::default()
    };
    rt_a.reload_tunables(released).unwrap();
    let msg = drive_consume(&[&rt_a, &rt_b], &sink);
    assert_eq!(&*msg, b"held");
}

#[test]
fn sessions_and_streams_close_cleanly() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(manual_config(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let source = stream.create_source(ChannelId(1)).unwrap();
    session.close();
    let buf = source.get_buffer(1);
    // Stream is closed through the session: emit must fail.
    if let Ok(b) = buf {
        assert!(matches!(source.emit(b), Err(InsaneError::Closed)))
    }
    assert!(matches!(
        session.create_stream(QosPolicy::default()),
        Err(InsaneError::Closed)
    ));
}

#[test]
fn mismatched_peer_technologies_fall_back_to_kernel_udp() {
    // Producer has DPDK; consumer host is kernel-only.  The stream maps
    // to DPDK at the producer, but the message must still arrive — the
    // runtime reroutes that destination over the universal UDP datapath.
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("strong");
    let host_b = fabric.add_host("weak");
    let rt_a = Runtime::start(
        manual_config(1).with_technologies(&[Technology::KernelUdp, Technology::Dpdk]),
        &fabric,
        host_a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        manual_config(2).with_technologies(&[Technology::KernelUdp]),
        &fabric,
        host_b,
    )
    .unwrap();
    rt_a.add_peer(host_b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    assert_eq!(
        stream_a.technology(),
        Technology::Dpdk,
        "producer side accelerates"
    );
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    assert_eq!(stream_b.technology(), Technology::KernelUdp);
    let sink = stream_b.create_sink(ChannelId(88)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);

    let source = stream_a.create_source(ChannelId(88)).unwrap();
    let mut buf = source.get_buffer(8).unwrap();
    buf.copy_from_slice(b"fallback");
    source.emit(buf).unwrap();
    let msg = drive_consume(&[&rt_a, &rt_b], &sink);
    assert_eq!(&*msg, b"fallback");
    drop(msg);
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);
    assert_eq!(rt_a.slots_in_use(), 0);
}

#[test]
fn stats_track_message_flow() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp, Technology::Dpdk]);
    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sink = stream_b.create_sink(ChannelId(1)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream_a.create_source(ChannelId(1)).unwrap();
    for _ in 0..10 {
        let mut buf = source.get_buffer(8).unwrap();
        buf.copy_from_slice(b"counting");
        source.emit(buf).unwrap();
    }
    let mut got = 0;
    while got < 10 {
        let _ = drive_consume(&[&rt_a, &rt_b], &sink);
        got += 1;
    }
    assert_eq!(rt_a.stats().tx_messages, 10);
    assert_eq!(rt_b.stats().rx_messages, 10);
    assert!(rt_a.stats().control_messages > 0, "peering traffic counted");
}

#[cfg(feature = "telemetry")]
#[test]
fn telemetry_records_streams_datapaths_and_budget_violations() {
    use insane_core::TelemetryConfig;
    let fabric = Fabric::new(TestbedProfile::local());
    let host_a = fabric.add_host("a");
    let host_b = fabric.add_host("b");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    // A 1 ns budget every real message violates: the violation counter
    // must track the consumed count on the time-sensitive stream.
    let telemetry = TelemetryConfig::default().with_latency_budget(Duration::from_nanos(1));
    let rt_a = Runtime::start(
        manual_config(1)
            .with_technologies(&techs)
            .with_telemetry(telemetry),
        &fabric,
        host_a,
    )
    .unwrap();
    let rt_b = Runtime::start(
        manual_config(2)
            .with_technologies(&techs)
            .with_telemetry(telemetry),
        &fabric,
        host_b,
    )
    .unwrap();
    rt_a.add_peer(host_b).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let qos = QosPolicy {
        time_sensitivity: TimeSensitivity::TimeSensitive {
            class: insane_tsn::TrafficClass::new(6).unwrap(),
        },
        ..QosPolicy::fast()
    };
    let stream_a = session_a.create_stream(qos).unwrap();
    let stream_b = session_b.create_stream(qos).unwrap();
    let sink = stream_b.create_sink(ChannelId(42)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream_a.create_source(ChannelId(42)).unwrap();
    for _ in 0..5 {
        let mut buf = source.get_buffer(4).unwrap();
        buf.copy_from_slice(b"obsv");
        source.emit(buf).unwrap();
        drive_consume(&[&rt_a, &rt_b], &sink);
    }

    let json = rt_b.telemetry_json();
    let doc = insane_telemetry::Value::parse(&json).expect("snapshot is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(insane_telemetry::SNAPSHOT_SCHEMA)
    );
    let streams = doc.get("streams").and_then(|v| v.as_array()).unwrap();
    let stream = streams
        .iter()
        .find(|s| s.get("channel").and_then(|c| c.as_u64()) == Some(42))
        .expect("channel 42 recorded");
    assert_eq!(stream.get("class").and_then(|v| v.as_str()), Some("tc6"));
    assert_eq!(stream.get("consumed").and_then(|v| v.as_u64()), Some(5));
    assert_eq!(
        stream.get("budget_violations").and_then(|v| v.as_u64()),
        Some(5),
        "every message beats a 1 ns budget"
    );
    let total = stream.get("total").unwrap();
    assert_eq!(total.get("count").and_then(|v| v.as_u64()), Some(5));
    assert!(total.get("p50_ns").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(total.get("p99_ns").and_then(|v| v.as_u64()).unwrap() > 0);

    // Per-datapath counters: rt_a transmitted over DPDK, rt_b received.
    let tx_doc = insane_telemetry::Value::parse(&rt_a.telemetry_json()).unwrap();
    let dp = |doc: &insane_telemetry::Value, name: &str, key: &str| -> u64 {
        doc.get("datapaths")
            .and_then(|v| v.as_array())
            .and_then(|dps| {
                dps.iter()
                    .find(|d| d.get("technology").and_then(|t| t.as_str()) == Some(name))
                    .and_then(|d| d.get(key))
                    .and_then(|v| v.as_u64())
            })
            .unwrap_or(0)
    };
    assert_eq!(dp(&tx_doc, "dpdk", "tx_messages"), 5);
    assert_eq!(dp(&tx_doc, "dpdk", "scheduled"), 5);
    assert_eq!(dp(&doc, "dpdk", "rx_messages"), 5);
    // Pools and counters ride along.
    assert!(doc.get("pools").and_then(|v| v.as_array()).unwrap().len() >= 2);
    assert!(
        doc.get("counters")
            .and_then(|c| c.get("rx_messages"))
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 5
    );
}

#[cfg(feature = "telemetry")]
#[test]
fn introspection_endpoint_serves_stats_over_unix_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(RuntimeConfig::new(1), &fabric, host).unwrap();
    let session = Session::connect(&rt).unwrap();
    let stream = session.create_stream(QosPolicy::default()).unwrap();
    let source = stream.create_source(ChannelId(9)).unwrap();
    let sink = stream.create_sink(ChannelId(9)).unwrap();
    let mut buf = source.get_buffer(2).unwrap();
    buf.copy_from_slice(b"ok");
    source.emit(buf).unwrap();
    let msg = sink.consume(ConsumeMode::Blocking).unwrap();
    drop(msg);

    let path = std::env::temp_dir().join(format!("insane-introspect-{}.sock", std::process::id()));
    rt.serve_introspection(&*path).unwrap();

    let query = |line: &str| -> String {
        // The accept loop polls every few ms; retry briefly.
        for _ in 0..500 {
            if let Ok(mut conn) = UnixStream::connect(&path) {
                conn.write_all(line.as_bytes()).unwrap();
                conn.write_all(b"\n").unwrap();
                let mut reader = BufReader::new(conn);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                return response;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("introspection endpoint never came up at {}", path.display());
    };

    let pong = query("ping");
    assert!(pong.contains("\"ok\":true"), "ping response: {pong}");

    let stats = query("stats");
    let doc = insane_telemetry::Value::parse(stats.trim()).expect("stats response parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(insane_telemetry::SNAPSHOT_SCHEMA)
    );
    let streams = doc.get("streams").and_then(|v| v.as_array()).unwrap();
    assert!(
        streams
            .iter()
            .any(|s| s.get("channel").and_then(|c| c.as_u64()) == Some(9)),
        "locally consumed stream shows up in the endpoint snapshot"
    );

    rt.shutdown();
    assert!(
        !path.exists(),
        "socket file is removed when the runtime stops"
    );
}

#[test]
fn reload_tunables_takes_effect_and_rejects_inconsistency() {
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let mut config = manual_config(1);
    config.burst = 32;
    let rt = Runtime::start(config, &fabric, host).unwrap();

    // The runtime seeds itself from its construction burst.
    let initial = rt.tunables();
    assert_eq!(initial.burst_max, 32);
    assert_eq!(initial.burst_min, 4);

    // A valid reload is visible on the next read.
    let mut next = insane_core::Tunables::for_burst(8);
    next.idle_sleep_us = 42;
    rt.reload_tunables(next.clone()).unwrap();
    assert_eq!(rt.tunables(), next);

    // An inconsistent snapshot is rejected atomically: nothing changes.
    let bad = insane_core::Tunables {
        burst_min: 64,
        burst_max: 2,
        ..Default::default()
    };
    match rt.reload_tunables(bad) {
        Err(InsaneError::InvalidConfig(msg)) => {
            assert!(msg.contains("burst_min"), "unexpected message: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    assert_eq!(rt.tunables(), next);
}

#[test]
fn traffic_flows_across_a_live_tunables_reload() {
    let (_fabric, rt_a, rt_b) = two_node_setup(&[Technology::KernelUdp, Technology::Dpdk]);
    let session_a = Session::connect(&rt_a).unwrap();
    let session_b = Session::connect(&rt_b).unwrap();
    let stream_a = session_a.create_stream(QosPolicy::fast()).unwrap();
    let stream_b = session_b.create_stream(QosPolicy::fast()).unwrap();
    let sink = stream_b.create_sink(ChannelId(31)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);
    let source = stream_a.create_source(ChannelId(31)).unwrap();
    poll_until_quiescent(&[&rt_a, &rt_b], 10_000);

    // Interleave emits with reloads that swing the burst window; every
    // message must still arrive, in order.
    for round in 0u8..6 {
        if round % 2 == 0 {
            let t = insane_core::Tunables::for_burst(if round % 4 == 0 { 4 } else { 64 });
            rt_a.reload_tunables(t.clone()).unwrap();
            rt_b.reload_tunables(t).unwrap();
        }
        let mut buf = source.get_buffer(1).unwrap();
        buf.copy_from_slice(&[round]);
        source.emit(buf).unwrap();
        let msg = drive_consume(&[&rt_a, &rt_b], &sink);
        assert_eq!(&*msg, &[round], "message order survived the reload");
    }
}

#[cfg(feature = "telemetry")]
#[test]
fn introspection_endpoint_reloads_tunables() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(RuntimeConfig::new(1), &fabric, host).unwrap();
    let path = std::env::temp_dir().join(format!("insane-reload-{}.sock", std::process::id()));
    rt.serve_introspection(&*path).unwrap();

    let query = |line: &str| -> String {
        for _ in 0..500 {
            if let Ok(mut conn) = UnixStream::connect(&path) {
                conn.write_all(line.as_bytes()).unwrap();
                conn.write_all(b"\n").unwrap();
                let mut reader = BufReader::new(conn);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                return response;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("introspection endpoint never came up at {}", path.display());
    };

    // A good reload round-trips and is visible through the API.
    let ok = query("reload burst_min=2 burst_max=64 idle_sleep_us=10");
    assert!(ok.contains("\"ok\":true"), "reload response: {ok}");
    let t = rt.tunables();
    assert_eq!((t.burst_min, t.burst_max, t.idle_sleep_us), (2, 64, 10));

    // Bad keys, bad values, and inconsistent snapshots are refused and
    // leave the published tunables untouched.
    for bad in [
        "reload bogus=1",
        "reload burst_min=zero",
        "reload burst_min=100 burst_max=4",
        "reload",
    ] {
        let resp = query(bad);
        assert!(
            resp.contains("error"),
            "expected rejection for {bad:?}: {resp}"
        );
    }
    assert_eq!(rt.tunables(), t);

    rt.shutdown();
}
