//! Regenerates Table 3 of the paper (LoC per interface).
fn main() {
    insane_bench::experiments::table3();
}
