//! Regenerates Table 3 of the paper (LoC per interface).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::table3());
}
