//! Regenerates Fig. 5a/5b of the paper (RTT vs payload, both testbeds).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig5());
}
