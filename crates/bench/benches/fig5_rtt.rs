//! Regenerates Fig. 5a/5b of the paper (RTT vs payload, both testbeds).
fn main() {
    insane_bench::experiments::fig5();
}
