//! Regenerates Fig. 8a/8b of the paper (goodput sweeps).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig8a());
    run(insane_bench::experiments::fig8b());
}
