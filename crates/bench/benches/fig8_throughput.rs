//! Regenerates Fig. 8a/8b of the paper (goodput sweeps).
fn main() {
    insane_bench::experiments::fig8a();
    insane_bench::experiments::fig8b();
}
