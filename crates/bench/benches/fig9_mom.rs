//! Regenerates Fig. 9a/9b of the paper (MoM latency and goodput).
fn main() {
    insane_bench::experiments::fig9a();
    insane_bench::experiments::fig9b();
}
