//! Regenerates Fig. 9a/9b of the paper (MoM latency and goodput).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig9a());
    run(insane_bench::experiments::fig9b());
}
