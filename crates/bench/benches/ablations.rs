//! Ablations of the design choices called out in DESIGN.md §5.
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::ablations());
}
