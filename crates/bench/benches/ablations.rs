//! Ablations of the design choices called out in DESIGN.md §5.
fn main() {
    insane_bench::experiments::ablations();
}
