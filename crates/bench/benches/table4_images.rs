//! Regenerates Table 4 of the paper (streamed image sizes).
fn main() {
    insane_bench::experiments::table4();
}
