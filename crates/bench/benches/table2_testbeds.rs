//! Regenerates Table 2 of the paper.
fn main() {
    insane_bench::experiments::table2();
}
