//! Regenerates Fig. 7a/7b of the paper (average RTT across systems).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig7());
}
