//! Regenerates Fig. 7a/7b of the paper (average RTT across systems).
fn main() {
    insane_bench::experiments::fig7();
}
