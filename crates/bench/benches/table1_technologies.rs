//! Regenerates Table 1 of the paper.
fn main() {
    insane_bench::experiments::table1();
}
