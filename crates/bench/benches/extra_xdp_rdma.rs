//! Extra experiment: the XDP and RDMA datapaths the paper's prototype
//! had not integrated yet.
fn main() {
    insane_bench::experiments::extra_xdp_rdma();
}
