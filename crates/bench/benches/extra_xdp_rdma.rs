//! Extra experiment: the XDP and RDMA datapaths the paper's prototype
//! had not integrated yet.
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::extra_xdp_rdma());
}
