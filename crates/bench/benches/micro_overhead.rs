//! Criterion micro-benchmarks of the middleware's ns-scale primitives.
//!
//! These support the paper's headline claim that INSANE's abstraction
//! layer adds only nanosecond-scale work per operation (§6.2): the slot
//! pool, the token queues, the scheduler, and the full emit→dispatch
//! local path are measured in isolation, with no modeled device costs
//! involved (the local path never touches a datapath).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

use insane_core::{
    ChannelId, ConsumeMode, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session, ThreadingMode,
};
use insane_fabric::{Fabric, Technology, TestbedProfile};
use insane_memory::{PoolConfig, SlotPool};
use insane_queues::spsc;
use insane_tsn::{FifoScheduler, Scheduler, TrafficClass};

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues");
    group.throughput(Throughput::Elements(1));
    group.bench_function("spsc_push_pop", |b| {
        let (tx, rx) = spsc::channel::<u64>(1024);
        b.iter(|| {
            tx.push(7).expect("push");
            std::hint::black_box(rx.pop()).expect("pop")
        });
    });
    group.bench_function("mpmc_push_pop", |b| {
        let q = insane_queues::MpmcQueue::<u64>::new(1024);
        b.iter(|| {
            q.push(7).expect("push");
            std::hint::black_box(q.pop()).expect("pop")
        });
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_manager");
    group.throughput(Throughput::Elements(1));
    group.bench_function("slot_acquire_release", |b| {
        let pool = SlotPool::new(PoolConfig::new(0, 2048, 64)).expect("pool");
        b.iter(|| {
            let guard = pool.acquire(64).expect("acquire");
            let token = guard.into_token();
            pool.release(token).expect("release");
        });
    });
    group.bench_function("slot_write_view_roundtrip", |b| {
        let pool = SlotPool::new(PoolConfig::new(0, 2048, 64)).expect("pool");
        let payload = [7u8; 64];
        b.iter(|| {
            let mut guard = pool.acquire(64).expect("acquire");
            guard.copy_from_slice(&payload);
            let view = pool.view(guard.into_token()).expect("view");
            std::hint::black_box(&*view);
        });
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(1));
    group.bench_function("fifo_enqueue_dequeue", |b| {
        let mut scheduler = FifoScheduler::new();
        let now = Instant::now();
        let mut out = Vec::with_capacity(1);
        b.iter(|| {
            scheduler.enqueue(7u64, TrafficClass::BEST_EFFORT, now);
            scheduler.dequeue_ready(&mut out, 1, now);
            out.clear();
        });
    });
    group.finish();
}

fn bench_local_path(c: &mut Criterion) {
    // The complete middleware path with zero modeled costs: emit → TX
    // queue → runtime poll → local shared-memory dispatch → consume.
    let fabric = Fabric::new(TestbedProfile::local());
    let host = fabric.add_host("solo");
    let rt = Runtime::start(
        RuntimeConfig::new(1)
            .with_technologies(&[Technology::KernelUdp])
            .with_threading(ThreadingMode::Manual),
        &fabric,
        host,
    )
    .expect("runtime");
    let session = Session::connect(&rt).expect("session");
    let stream = session.create_stream(QosPolicy::slow()).expect("stream");
    let source = stream.create_source(ChannelId(1)).expect("source");
    let sink = stream.create_sink(ChannelId(1)).expect("sink");

    let mut group = c.benchmark_group("insane_local_path");
    group.throughput(Throughput::Elements(1));
    group.bench_function("emit_poll_consume_64b", |b| {
        let payload = [7u8; 64];
        b.iter(|| {
            let mut buf = source.get_buffer(64).expect("buffer");
            buf.copy_from_slice(&payload);
            source.emit(buf).expect("emit");
            rt.poll_once();
            loop {
                match sink.consume(ConsumeMode::NonBlocking) {
                    Ok(msg) => {
                        std::hint::black_box(&*msg);
                        break;
                    }
                    Err(InsaneError::WouldBlock) => {
                        rt.poll_once();
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queues,
    bench_memory,
    bench_scheduler,
    bench_local_path
);
criterion_main!(benches);
