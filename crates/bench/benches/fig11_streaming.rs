//! Regenerates Fig. 11a/11b of the paper (streaming FPS and latency).
fn main() {
    insane_bench::experiments::fig11();
}
