//! Regenerates Fig. 11a/11b of the paper (streaming FPS and latency).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig11());
}
