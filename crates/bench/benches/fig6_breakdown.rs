//! Regenerates Fig. 6 of the paper (INSANE fast latency breakdown).
fn main() {
    insane_bench::experiments::fig6();
}
