//! Regenerates Fig. 6 of the paper (INSANE fast latency breakdown).
fn main() {
    fn run(r: Result<(), insane_bench::BenchError>) {
        if let Err(e) = r {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    run(insane_bench::experiments::fig6());
}
