//! Goodput measurement (Fig. 8) under the pipeline model.
//!
//! On the paper's testbeds sender and receiver run concurrently, so
//! sustained goodput is set by the slowest stage of the pipeline:
//! sender CPU, wire serialization, or receiver CPU.  This harness times
//! the TX and RX stages separately (each driven inline) and reports
//! `payload·8 / max(tx_ns, rx_ns, wire_ns)` per message.  Throughput is
//! measured as *goodput*: payload bits delivered per unit time, as §6.2
//! defines.
//!
//! The TX harness writes only a 64-byte prefix of each payload rather
//! than regenerating the full buffer: the measurement targets the
//! *systems'* inherent copies (the kernel path's user→kernel copy,
//! Catnip's mbuf fill) against the zero-copy paths, not the
//! application's payload-production rate — which on this DRAM-starved
//! vCPU would dominate every system equally and is not representative of
//! the paper's testbed.

use std::time::Instant;

use insane_core::{ConsumeMode, InsaneError, QosPolicy, Technology};
use insane_demikernel::{Backend, DemiEvent, Demikernel};
use insane_fabric::devices::{DpdkPort, RecvMode, SimUdpSocket};
use insane_fabric::{Endpoint, Fabric, FabricError, TestbedProfile};

use crate::setup::{throughput_config, throughput_profile, InsanePair};
use crate::stats::gbps;
use crate::BenchError;

/// The systems compared in Fig. 8a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TputSystem {
    /// Plain kernel UDP sockets.
    KernelUdp,
    /// Native DPDK burst I/O.
    RawDpdk,
    /// Demikernel over kernel sockets.
    Catnap,
    /// Demikernel over DPDK (one packet per push).
    Catnip,
    /// INSANE slow (kernel UDP datapath).
    InsaneSlow,
    /// INSANE fast (DPDK datapath, opportunistic batching).
    InsaneFast,
}

impl TputSystem {
    /// Label as used in the paper's Fig. 8a legend.
    pub fn label(&self) -> &'static str {
        match self {
            TputSystem::KernelUdp => "Kernel UDP",
            TputSystem::RawDpdk => "Raw DPDK",
            TputSystem::Catnap => "Catnap UDP",
            TputSystem::Catnip => "Catnip UDP",
            TputSystem::InsaneSlow => "INSANE slow",
            TputSystem::InsaneFast => "INSANE fast",
        }
    }
}

/// Per-message wire time: serialization of payload + frame overhead at
/// the profile's line rate (the stage that caps Fig. 8a at ~97 Gbps).
pub fn wire_ns_per_msg(profile: &TestbedProfile, payload: usize) -> u64 {
    profile.link.serialization(payload + 42).as_nanos() as u64
}

/// Measured pipeline stages for one configuration, per message.
#[derive(Debug, Clone, Copy)]
pub struct Stages {
    /// Sender-side CPU per message, nanoseconds.
    pub tx_ns: u64,
    /// Receiver-side CPU per message, nanoseconds.
    pub rx_ns: u64,
    /// Wire serialization per message, nanoseconds.
    pub wire_ns: u64,
}

impl Stages {
    /// Goodput in Gbps for `payload`-byte messages.
    pub fn goodput_gbps(&self, payload: usize) -> f64 {
        let bottleneck = self.tx_ns.max(self.rx_ns).max(self.wire_ns).max(1);
        gbps(payload, 1, bottleneck)
    }
}

/// Measures both pipeline stages for `system` with `n` messages of
/// `payload` bytes.
///
/// # Errors
///
/// Propagates failures from the system under measurement.
pub fn stages(
    system: TputSystem,
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<Stages, BenchError> {
    let wire_ns = wire_ns_per_msg(profile, payload);
    let (tx_ns, rx_ns) = match system {
        TputSystem::KernelUdp => (
            udp_tx_ns(profile, payload, n)?,
            udp_rx_ns(profile, payload, n)?,
        ),
        TputSystem::RawDpdk => (
            dpdk_tx_ns(profile, payload, n)?,
            dpdk_rx_ns(profile, payload, n)?,
        ),
        TputSystem::Catnap => demi_stages(Backend::Catnap, profile, payload, n)?,
        TputSystem::Catnip => demi_stages(Backend::Catnip, profile, payload, n)?,
        TputSystem::InsaneSlow => {
            let (s, _) = insane_stages(
                profile,
                QosPolicy::slow(),
                Technology::KernelUdp,
                payload,
                n,
                1,
            )?;
            (s.tx_ns, s.rx_ns)
        }
        TputSystem::InsaneFast => {
            let (s, _) =
                insane_stages(profile, QosPolicy::fast(), Technology::Dpdk, payload, n, 1)?;
            (s.tx_ns, s.rx_ns)
        }
    };
    Ok(Stages {
        tx_ns,
        rx_ns,
        wire_ns,
    })
}

/// Fig. 8a entry point: goodput of `system`.
///
/// # Errors
///
/// Propagates failures from the system under measurement.
pub fn goodput_gbps(
    system: TputSystem,
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<f64, BenchError> {
    Ok(stages(system, profile, payload, n)?.goodput_gbps(payload))
}

/// Fig. 8b entry point: per-sink goodput with `sinks` co-located sink
/// applications on the receiving host (1 KB payloads in the paper).
pub fn insane_multi_sink_gbps(
    profile: &TestbedProfile,
    payload: usize,
    sinks: usize,
    n: usize,
) -> Result<f64, BenchError> {
    let (stages, _) = insane_stages(
        profile,
        QosPolicy::fast(),
        Technology::Dpdk,
        payload,
        n,
        sinks,
    )?;
    Ok(stages.goodput_gbps(payload))
}

// ---------------------------------------------------------------------
// Raw kernel UDP
// ---------------------------------------------------------------------

fn udp_tx_ns(profile: &TestbedProfile, payload: usize, n: usize) -> Result<u64, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let socket = SimUdpSocket::bind(&fabric, a, 9000)?;
    socket.set_mtu(SimUdpSocket::JUMBO_MTU);
    // Shallow destination: frames drop cheaply, sender is unthrottled.
    let dst = Endpoint {
        host: b,
        port: 9000,
    };
    let _sink = fabric.bind_with_capacity(dst, 64)?;
    let msg = vec![0x5Au8; payload];
    let round = 256.min(n.max(1));
    let rounds = n.div_ceil(round).max(4);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..round {
            socket.send_to(&msg, dst)?;
        }
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(median_per_msg(&samples, round))
}

/// Writes a 64-byte message prefix (see the module docs).
fn fill_prefix(buf: &mut [u8]) {
    let n = buf.len().min(64);
    buf[..n].fill(0x5A);
}

/// Median per-message time across measurement rounds.  Hypervisor steal
/// time on this vCPU shows up as multi-millisecond stalls; medians over
/// sub-rounds reject them where a single long pass cannot.
fn median_per_msg(rounds_ns: &[u64], round: usize) -> u64 {
    let series = crate::stats::Series::from_samples(rounds_ns.to_vec());
    series.median() / round.max(1) as u64
}

fn udp_rx_ns(profile: &TestbedProfile, payload: usize, n: usize) -> Result<u64, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let tx = SimUdpSocket::bind(&fabric, a, 9000)?;
    let rx = SimUdpSocket::bind(&fabric, b, 9000)?;
    tx.set_mtu(SimUdpSocket::JUMBO_MTU);
    rx.set_mtu(SimUdpSocket::JUMBO_MTU);
    let msg = vec![0x5Au8; payload];
    let round = 256.min(n.max(1));
    let rounds = n.div_ceil(round).max(4);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..round {
            tx.send_to(&msg, rx.local_addr())?;
        }
        settle_wire();
        let t0 = Instant::now();
        let mut got = 0;
        while got < round {
            match rx.recv(RecvMode::NonBlocking) {
                Ok(_) => got += 1,
                Err(FabricError::WouldBlock) => core::hint::spin_loop(),
                Err(e) => return Err(e.into()),
            }
        }
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(median_per_msg(&samples, round))
}

// ---------------------------------------------------------------------
// Raw DPDK
// ---------------------------------------------------------------------

fn dpdk_tx_ns(profile: &TestbedProfile, payload: usize, n: usize) -> Result<u64, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let port = DpdkPort::open(&fabric, a, 0, 8_192)?;
    let dst = Endpoint { host: b, port: 0 };
    let _sink = fabric.bind_with_capacity(dst, 64)?;
    let round = 256.min(n.max(1));
    let rounds = n.div_ceil(round).max(4);
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        let mut sent = 0;
        while sent < round {
            let burst = 32.min(round - sent);
            let mut mbufs = Vec::with_capacity(burst);
            for _ in 0..burst {
                let mut mbuf = loop {
                    match port.alloc_mbuf(payload) {
                        Ok(m) => break m,
                        Err(_) => core::hint::spin_loop(),
                    }
                };
                fill_prefix(&mut mbuf);
                mbufs.push(mbuf);
            }
            port.tx_burst(dst, mbufs)?;
            sent += burst;
        }
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(median_per_msg(&samples, round))
}

fn dpdk_rx_ns(profile: &TestbedProfile, payload: usize, n: usize) -> Result<u64, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let tx = DpdkPort::open(&fabric, a, 0, 8_192)?;
    let rx = DpdkPort::open(&fabric, b, 0, 64)?;
    let round = 256.min(n.max(1));
    let rounds = n.div_ceil(round).max(4);
    let mut samples = Vec::with_capacity(rounds);
    let mut packets = Vec::with_capacity(64);
    for _ in 0..rounds {
        let mut sent = 0;
        while sent < round {
            let burst = 32.min(round - sent);
            let mut mbufs = Vec::with_capacity(burst);
            for _ in 0..burst {
                let mut mbuf = tx.alloc_mbuf(payload)?;
                fill_prefix(&mut mbuf);
                mbufs.push(mbuf);
            }
            tx.tx_burst(rx.local_addr(), mbufs)?;
            sent += burst;
        }
        settle_wire();
        let t0 = Instant::now();
        let mut got = 0;
        while got < round {
            got += rx.rx_burst(&mut packets, 32);
            packets.clear();
        }
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    Ok(median_per_msg(&samples, round))
}

// ---------------------------------------------------------------------
// Demikernel
// ---------------------------------------------------------------------

fn demi_stages(
    backend: Backend,
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<(u64, u64), BenchError> {
    // TX stage.
    let tx_ns = {
        let fabric = Fabric::new(profile.clone());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let mut demi = Demikernel::new(backend, &fabric, a)?;
        let qd = demi.socket()?;
        demi.bind(qd, 9000)?;
        let dst = Endpoint {
            host: b,
            port: 9000,
        };
        let _sink = fabric.bind_with_capacity(dst, 64)?;
        let msg = vec![0x5Au8; payload];
        let round = 256.min(n.max(1));
        let rounds = n.div_ceil(round).max(4);
        let mut samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..round {
                let token = demi.push_to(qd, &msg, dst)?;
                demi.wait(token, None)?;
            }
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        median_per_msg(&samples, round)
    };
    // RX stage.
    let rx_ns = {
        let fabric = Fabric::new(profile.clone());
        let a = fabric.add_host("a");
        let b = fabric.add_host("b");
        let mut tx = Demikernel::new(backend, &fabric, a)?;
        let mut demi = Demikernel::new(backend, &fabric, b)?;
        let qt = tx.socket()?;
        tx.bind(qt, 9000)?;
        let qd = demi.socket()?;
        demi.bind(qd, 9000)?;
        let dst = Endpoint {
            host: b,
            port: 9000,
        };
        let msg = vec![0x5Au8; payload];
        let round = 256.min(n.max(1));
        let rounds = n.div_ceil(round).max(4);
        let mut samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            for _ in 0..round {
                let token = tx.push_to(qt, &msg, dst)?;
                tx.wait(token, None)?;
            }
            settle_wire();
            let t0 = Instant::now();
            for _ in 0..round {
                let pop = demi.pop(qd)?;
                match demi.wait(pop, None)? {
                    DemiEvent::Popped { .. } => {}
                    DemiEvent::Pushed => {
                        return Err(BenchError::Other("pop token completed as Pushed".into()))
                    }
                }
            }
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        median_per_msg(&samples, round)
    };
    Ok((tx_ns, rx_ns))
}

// ---------------------------------------------------------------------
// INSANE
// ---------------------------------------------------------------------

fn insane_stages(
    profile: &TestbedProfile,
    qos: QosPolicy,
    hot_path: Technology,
    payload: usize,
    n: usize,
    sinks: usize,
) -> Result<(Stages, u64), BenchError> {
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let wire_ns = wire_ns_per_msg(profile, payload);

    // TX stage: receiver runtime exists (so the subscription routes the
    // messages onto the wire) but is never polled; its NIC ring absorbs
    // and then drops, exactly like an overrun receiver.
    let tx_ns = {
        let pair = InsanePair::with_config(
            throughput_profile(profile.clone()),
            &techs,
            throughput_config,
        )?;
        let (source, _sinks) = pair.one_way(qos, 1)?;
        let round = 256.min(n.max(1));
        let rounds = n.div_ceil(round).max(4);
        let mut samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = Instant::now();
            let mut emitted = 0usize;
            let mut last_token = None;
            while emitted < round {
                match source.get_buffer(payload) {
                    Ok(mut buf) => {
                        fill_prefix(&mut buf);
                        match source.emit(buf) {
                            Ok(token) => {
                                last_token = Some(token);
                                emitted += 1;
                                if emitted.is_multiple_of(32) {
                                    pair.rt_a.poll_transmit(hot_path);
                                }
                            }
                            Err(InsaneError::Backpressure) => {
                                pair.rt_a.poll_transmit(hot_path);
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    Err(InsaneError::Memory(_)) => {
                        // Pool back-pressure: let the runtime flush.
                        pair.rt_a.poll_transmit(hot_path);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            // Flush: drain until the last message left the runtime.
            if let Some(token) = last_token {
                while source.emit_outcome(token) == insane_core::EmitOutcome::Pending {
                    pair.rt_a.poll_transmit(hot_path);
                }
            }
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        median_per_msg(&samples, round)
    };

    // RX stage: prefill the receiver's NIC ring, then time two separate
    // pipeline stages.  The *runtime* stage is the paper's single polling
    // thread (§8: "a single sender easily overflows a single-core sink"):
    // device drain + per-sink dispatch, serialized on one core.  The
    // *consumer* stage is one sink application's consume work — the
    // paper's sink applications are separate processes on their own
    // cores, so their work runs in parallel across sinks, not multiplied
    // by the sink count.
    let (rx_ns, dropped) = {
        let pair = InsanePair::with_config(
            throughput_profile(profile.clone()),
            &techs,
            throughput_config,
        )?;
        let (source, sink_handles) = pair.one_way(qos, sinks)?;
        let round = 256.min(n.max(1));
        let rounds = n.div_ceil(round).max(4);
        let mut samples = Vec::with_capacity(rounds);
        let mut consume_samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut emitted = 0usize;
            while emitted < round {
                match source.get_buffer(payload) {
                    Ok(mut buf) => {
                        fill_prefix(&mut buf);
                        match source.emit(buf) {
                            Ok(_) => emitted += 1,
                            Err(InsaneError::Backpressure) => {
                                pair.rt_a.poll_technology(hot_path);
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    Err(InsaneError::Memory(_)) => {
                        pair.rt_a.poll_technology(hot_path);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            // Flush the sender runtime (untimed).
            for _ in 0..100_000 {
                if !pair.rt_a.poll_technology(hot_path) {
                    break;
                }
            }
            settle_wire();
            let expected = (round * sinks) as u64;
            let already: u64 = sink_handles.iter().map(|s| s.stats().received).sum();
            // Runtime stage: the polling thread moves every message from
            // the NIC ring into all sink queues.
            let t0 = Instant::now();
            loop {
                pair.rt_b.poll_technology(hot_path);
                let received: u64 = sink_handles.iter().map(|s| s.stats().received).sum();
                if received - already >= expected {
                    break;
                }
            }
            samples.push(t0.elapsed().as_nanos() as u64);
            // Consumer stage: each sink application drains its queue on
            // its own core; measured serially here and normalized.
            let t1 = Instant::now();
            for sink in &sink_handles {
                loop {
                    match sink.consume(ConsumeMode::NonBlocking) {
                        Ok(m) => drop(m),
                        Err(InsaneError::WouldBlock) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            consume_samples.push(t1.elapsed().as_nanos() as u64 / sinks.max(1) as u64);
        }
        let dropped = sink_handles.iter().map(|s| s.stats().dropped).sum();
        let runtime_ns = median_per_msg(&samples, round);
        let consume_ns = median_per_msg(&consume_samples, round);
        (runtime_ns.max(consume_ns), dropped)
    };

    Ok((
        Stages {
            tx_ns,
            rx_ns,
            wire_ns,
        },
        dropped,
    ))
}

/// Waits long enough for prefilled frames to become deliverable
/// (serialization of a full ring at line rate is well under this).
fn settle_wire() {
    std::thread::sleep(std::time::Duration::from_millis(3));
}
