//! LunarMoM vs Cyclone-DDS-like vs ZeroMQ-like measurements (Fig. 9).

use std::time::Instant;

use insane_baselines::{BaselineError, CycloneLite, ZmqLite};
use insane_core::{QosPolicy, Technology};
use insane_fabric::{Endpoint, Fabric, TestbedProfile};
use lunar::{LunarError, LunarMom};

use crate::setup::{throughput_config, InsanePair};
use crate::stats::{gbps, Series};
use crate::throughput::wire_ns_per_msg;
use crate::BenchError;

/// The messaging systems of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MomSystem {
    /// LunarMoM over INSANE fast (DPDK).
    LunarFast,
    /// LunarMoM over INSANE slow (kernel UDP).
    LunarSlow,
    /// The Cyclone-DDS-like baseline.
    CycloneDds,
    /// The ZeroMQ-like baseline.
    ZeroMq,
}

impl MomSystem {
    /// Label as used in the paper's Fig. 9 legend.
    pub fn label(&self) -> &'static str {
        match self {
            MomSystem::LunarFast => "Lunar fast",
            MomSystem::LunarSlow => "Lunar slow",
            MomSystem::CycloneDds => "Cyclone DDS",
            MomSystem::ZeroMq => "ZeroMQ UDP",
        }
    }
}

/// Publisher→subscriber→publisher round trip over topics (the paper's
/// MoM ping-pong test).
///
/// # Errors
///
/// Propagates failures from the system under measurement.
pub fn mom_rtt_series(
    system: MomSystem,
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    match system {
        MomSystem::LunarFast => lunar_rtt(
            profile,
            QosPolicy::fast(),
            Technology::Dpdk,
            payload,
            iters,
            warmup,
        ),
        MomSystem::LunarSlow => lunar_rtt(
            profile,
            QosPolicy::slow(),
            Technology::KernelUdp,
            payload,
            iters,
            warmup,
        ),
        MomSystem::CycloneDds => cyclone_rtt(profile, payload, iters, warmup),
        MomSystem::ZeroMq => zmq_rtt(profile, payload, iters, warmup),
    }
}

fn lunar_rtt(
    profile: &TestbedProfile,
    qos: QosPolicy,
    hot_path: Technology,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let pair = InsanePair::new(profile.clone(), &[Technology::KernelUdp, Technology::Dpdk])?;
    let mom_a = LunarMom::connect(&pair.rt_a, qos)?;
    let mom_b = LunarMom::connect(&pair.rt_b, qos)?;
    let ping_sub = mom_b.subscriber("bench/ping")?;
    let pong_sub = mom_a.subscriber("bench/pong")?;
    pair.settle();
    let ping_pub = mom_a.publisher("bench/ping")?;
    let pong_pub = mom_b.publisher("bench/pong")?;
    pair.settle();
    let msg = vec![0xC3u8; payload];
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        ping_pub.publish(&msg)?;
        let ping = loop {
            pair.rt_a.poll_technology(hot_path);
            pair.rt_b.poll_technology(hot_path);
            match ping_sub.try_next() {
                Ok(m) => break m,
                Err(LunarError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        pong_pub.publish(&ping)?;
        drop(ping);
        loop {
            pair.rt_a.poll_technology(hot_path);
            pair.rt_b.poll_technology(hot_path);
            match pong_sub.try_next() {
                Ok(m) => {
                    drop(m);
                    break;
                }
                Err(LunarError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        }
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

fn cyclone_rtt(
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let ea = Endpoint {
        host: a,
        port: 7400,
    };
    let eb = Endpoint {
        host: b,
        port: 7400,
    };
    let na = CycloneLite::new(&fabric, a, 7400, vec![eb]).map_err(baseline)?;
    let nb = CycloneLite::new(&fabric, b, 7400, vec![ea]).map_err(baseline)?;
    let msg = vec![0xC3u8; payload];
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        na.publish(1, &msg).map_err(baseline)?;
        let sample = nb.poll_topic_busy(1).map_err(baseline)?;
        nb.publish(2, &sample.payload).map_err(baseline)?;
        let _ = na.poll_topic_busy(2).map_err(baseline)?;
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

fn zmq_rtt(
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let ea = Endpoint {
        host: a,
        port: 5555,
    };
    let eb = Endpoint {
        host: b,
        port: 5555,
    };
    let na = ZmqLite::new(&fabric, a, 5555, vec![eb]).map_err(baseline)?;
    let nb = ZmqLite::new(&fabric, b, 5555, vec![ea]).map_err(baseline)?;
    na.subscribe(b"pong");
    nb.subscribe(b"ping");
    let msg = vec![0xC3u8; payload];
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        na.publish(b"ping", &msg).map_err(baseline)?;
        let m = nb.poll_busy().map_err(baseline)?;
        nb.publish(b"pong", &m.payload).map_err(baseline)?;
        let _ = na.poll_busy().map_err(baseline)?;
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

/// Wraps a baseline error (the `-Lite` baselines have their own type).
fn baseline(e: BaselineError) -> BenchError {
    BenchError::Other(format!("baseline: {e}"))
}

/// MoM goodput (Fig. 9b) under the pipeline model; ZeroMQ is measured
/// too even though the paper excluded it for instability.
///
/// # Errors
///
/// Propagates failures from the system under measurement.
pub fn mom_goodput_gbps(
    system: MomSystem,
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<f64, BenchError> {
    let wire = wire_ns_per_msg(profile, payload);
    let (tx, rx) = match system {
        MomSystem::LunarFast => {
            lunar_stages(profile, QosPolicy::fast(), Technology::Dpdk, payload, n)?
        }
        MomSystem::LunarSlow => lunar_stages(
            profile,
            QosPolicy::slow(),
            Technology::KernelUdp,
            payload,
            n,
        )?,
        MomSystem::CycloneDds => cyclone_stages(profile, payload, n)?,
        MomSystem::ZeroMq => zmq_stages(profile, payload, n)?,
    };
    Ok(gbps(payload, 1, tx.max(rx).max(wire).max(1)))
}

fn lunar_stages(
    profile: &TestbedProfile,
    qos: QosPolicy,
    hot_path: Technology,
    payload: usize,
    n: usize,
) -> Result<(u64, u64), BenchError> {
    // TX stage: publish with the receiving node unpolled.
    let tx_ns = {
        let pair = InsanePair::with_config(
            profile.clone(),
            &[Technology::KernelUdp, Technology::Dpdk],
            throughput_config,
        )?;
        let mom_a = LunarMom::connect(&pair.rt_a, qos)?;
        let mom_b = LunarMom::connect(&pair.rt_b, qos)?;
        let _sub = mom_b.subscriber("bench/tput")?;
        pair.settle();
        let publisher = mom_a.publisher("bench/tput")?;
        pair.settle();
        let msg = vec![0xC3u8; payload];
        let t0 = Instant::now();
        let mut sent = 0usize;
        while sent < n {
            match publisher.publish(&msg) {
                Ok(()) => {
                    sent += 1;
                    if sent.is_multiple_of(16) {
                        pair.rt_a.poll_technology(hot_path);
                    }
                }
                Err(_) => {
                    pair.rt_a.poll_technology(hot_path);
                }
            }
        }
        for _ in 0..100_000 {
            if !pair.rt_a.poll_technology(hot_path) {
                break;
            }
        }
        t0.elapsed().as_nanos() as u64 / n as u64
    };
    // RX stage: prefill rounds, timed subscriber drain.
    let rx_ns = {
        let pair = InsanePair::with_config(
            profile.clone(),
            &[Technology::KernelUdp, Technology::Dpdk],
            throughput_config,
        )?;
        let mom_a = LunarMom::connect(&pair.rt_a, qos)?;
        let mom_b = LunarMom::connect(&pair.rt_b, qos)?;
        let sub = mom_b.subscriber("bench/tput")?;
        pair.settle();
        let publisher = mom_a.publisher("bench/tput")?;
        pair.settle();
        let msg = vec![0xC3u8; payload];
        let round = 1_024.min(n.max(1));
        let rounds = n.div_ceil(round).max(1);
        let mut total = 0u64;
        for _ in 0..rounds {
            let mut sent = 0usize;
            while sent < round {
                match publisher.publish(&msg) {
                    Ok(()) => sent += 1,
                    Err(_) => {
                        pair.rt_a.poll_technology(hot_path);
                    }
                }
            }
            for _ in 0..100_000 {
                if !pair.rt_a.poll_technology(hot_path) {
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(3));
            let t0 = Instant::now();
            let mut got = 0usize;
            while got < round {
                pair.rt_b.poll_technology(hot_path);
                loop {
                    match sub.try_next() {
                        Ok(m) => {
                            drop(m);
                            got += 1;
                        }
                        Err(LunarError::WouldBlock) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            total += t0.elapsed().as_nanos() as u64;
        }
        total / (rounds as u64 * round as u64)
    };
    Ok((tx_ns, rx_ns))
}

fn cyclone_stages(
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<(u64, u64), BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let eb = Endpoint {
        host: b,
        port: 7400,
    };
    let na = CycloneLite::new(&fabric, a, 7400, vec![eb]).map_err(baseline)?;
    let nb = CycloneLite::new(&fabric, b, 7400, vec![]).map_err(baseline)?;
    let msg = vec![0xC3u8; payload];
    // TX stage (receiver absorbs into its 4096-deep socket; excess drops).
    let t0 = Instant::now();
    for _ in 0..n.min(4_000) {
        na.publish(1, &msg).map_err(baseline)?;
    }
    let tx_ns = t0.elapsed().as_nanos() as u64 / n.min(4_000) as u64;
    // RX stage on what was queued (after the wire settles).
    std::thread::sleep(std::time::Duration::from_millis(3));
    let t1 = Instant::now();
    let mut got = 0usize;
    while got < n.min(4_000) {
        match nb.poll() {
            Ok(_) => got += 1,
            Err(BaselineError::WouldBlock) => core::hint::spin_loop(),
            Err(e) => return Err(baseline(e)),
        }
    }
    let rx_ns = t1.elapsed().as_nanos() as u64 / got.max(1) as u64;
    Ok((tx_ns, rx_ns))
}

fn zmq_stages(
    profile: &TestbedProfile,
    payload: usize,
    n: usize,
) -> Result<(u64, u64), BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let eb = Endpoint {
        host: b,
        port: 5555,
    };
    let na = ZmqLite::new(&fabric, a, 5555, vec![eb]).map_err(baseline)?;
    let nb = ZmqLite::new(&fabric, b, 5555, vec![]).map_err(baseline)?;
    nb.subscribe(b"t");
    let msg = vec![0xC3u8; payload];
    let count = n.min(4_000);
    let t0 = Instant::now();
    for _ in 0..count {
        na.publish(b"t", &msg).map_err(baseline)?;
    }
    let tx_ns = t0.elapsed().as_nanos() as u64 / count as u64;
    std::thread::sleep(std::time::Duration::from_millis(3));
    let t1 = Instant::now();
    let mut got = 0usize;
    while got < count {
        match nb.poll() {
            Ok(_) => got += 1,
            Err(BaselineError::WouldBlock) => core::hint::spin_loop(),
            Err(e) => return Err(baseline(e)),
        }
    }
    let rx_ns = t1.elapsed().as_nanos() as u64 / got.max(1) as u64;
    Ok((tx_ns, rx_ns))
}
