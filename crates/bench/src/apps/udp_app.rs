//! The benchmarking application over plain UDP sockets (Table 3 row 2).
//!
//! More code than the INSANE version: the application manages socket
//! options (MTU/buffer tuning), explicit addressing, its own receive
//! loops with would-block handling, and a tiny message header so the two
//! directions can share validation logic — all concerns the middleware
//! otherwise hides.  Still far less than DPDK: the kernel provides the
//! protocol stack.

use std::time::Instant;

use insane_fabric::devices::{RecvMode, SimUdpSocket};
use insane_fabric::{Endpoint, Fabric, FabricError, HostId, TestbedProfile};

/// Measured results of one run.
pub struct Results {
    /// RTT samples in nanoseconds.
    pub rtt_ns: Vec<u64>,
}

const PING_PORT: u16 = 9000;
const PONG_PORT: u16 = 9001;
const MSG_MAGIC: u8 = 0x42;

struct Peer {
    socket: SimUdpSocket,
    remote: Endpoint,
}

impl Peer {
    fn open(fabric: &Fabric, host: HostId, port: u16, remote: Endpoint) -> Self {
        let socket = SimUdpSocket::bind(fabric, host, port).expect("bind");
        // Tune the socket like the paper's setup (§6.1): jumbo frames so
        // the biggest payloads fit one datagram.
        socket.set_mtu(SimUdpSocket::JUMBO_MTU);
        Self { socket, remote }
    }

    fn send(&self, seq: u32, payload: &[u8]) {
        let mut datagram = Vec::with_capacity(5 + payload.len());
        datagram.push(MSG_MAGIC);
        datagram.extend_from_slice(&seq.to_le_bytes());
        datagram.extend_from_slice(payload);
        self.socket.send_to(&datagram, self.remote).expect("send");
    }

    fn recv_busy(&self, expect_seq: u32) -> Vec<u8> {
        loop {
            match self.socket.recv(RecvMode::NonBlocking) {
                Ok(datagram) => {
                    let bytes = datagram.payload;
                    if bytes.len() < 5 || bytes[0] != MSG_MAGIC {
                        continue; // stray datagram: not ours
                    }
                    let seq = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
                    if seq != expect_seq {
                        continue; // late duplicate from an earlier round
                    }
                    return bytes[5..].to_vec();
                }
                Err(FabricError::WouldBlock) => core::hint::spin_loop(),
                Err(e) => panic!("recv: {e}"),
            }
        }
    }
}

/// Runs `iters` ping-pong round trips of `payload` bytes and returns the
/// samples.
pub fn run(profile: TestbedProfile, payload: usize, iters: usize) -> Results {
    let fabric = Fabric::new(profile);
    let host_a = fabric.add_host("client");
    let host_b = fabric.add_host("server");
    let addr_a = Endpoint {
        host: host_a,
        port: PONG_PORT,
    };
    let addr_b = Endpoint {
        host: host_b,
        port: PING_PORT,
    };
    let client = Peer::open(&fabric, host_a, PONG_PORT, addr_b);
    let server = Peer::open(&fabric, host_b, PING_PORT, addr_a);

    let payload_bytes = vec![0u8; payload];
    let mut rtt_ns = Vec::with_capacity(iters);
    for i in 0..iters {
        let seq = i as u32;
        let t0 = Instant::now();
        client.send(seq, &payload_bytes);
        let ping = server.recv_busy(seq);
        server.send(seq, &ping);
        let pong = client.recv_busy(seq);
        assert_eq!(pong.len(), payload, "echo must be intact");
        rtt_ns.push(t0.elapsed().as_nanos() as u64);
    }
    Results { rtt_ns }
}
