//! The benchmarking application over native DPDK (Table 3 row 3).
//!
//! Twice the code of the INSANE version, for the reasons §3 of the paper
//! gives: with the kernel bypassed, the application owns everything the
//! kernel (or the middleware) otherwise provides — environment setup
//! (mempool sizing), its own Ethernet/IPv4/UDP framing and parsing with
//! address management, explicit burst loops with mbuf lifetime handling,
//! and its own demultiplexing and validation of every received packet.

use std::net::Ipv4Addr;
use std::time::Instant;

use insane_fabric::devices::{DpdkPort, RxPacket};
use insane_fabric::{Endpoint, Fabric, HostId, TestbedProfile};
use insane_netstack::ether::MacAddr;
use insane_netstack::ipv4::Ipv4Header;
use insane_netstack::neighbor::NeighborTable;
use insane_netstack::packet::{PacketBuilder, PacketView};
use insane_netstack::FRAME_OVERHEAD;

/// Measured results of one run.
pub struct Results {
    /// RTT samples in nanoseconds.
    pub rtt_ns: Vec<u64>,
}

const MEMPOOL_MBUFS: usize = 1024;
const UDP_PORT: u16 = 9000;
const BURST: usize = 32;
const MSG_MAGIC: u8 = 0x42;

/// One endpoint's full DPDK networking state: port, addresses, neighbor
/// table, and protocol logic.
struct DpdkApp {
    port: DpdkPort,
    mac: MacAddr,
    ip: Ipv4Addr,
    neighbors: NeighborTable,
    rx_stage: Vec<RxPacket>,
}

impl DpdkApp {
    fn init(fabric: &Fabric, host: HostId, all_hosts: u32) -> Self {
        // Environment setup the kernel would otherwise own: the mempool
        // backing every mbuf, the port binding, address assignment, and
        // a provisioned ARP table.
        let port = DpdkPort::open(fabric, host, 0, MEMPOOL_MBUFS).expect("port init");
        Self {
            port,
            mac: MacAddr::from_host_index(host.index()),
            ip: Ipv4Header::addr_for_host(host.index()),
            neighbors: NeighborTable::for_simulated_hosts(all_hosts),
            rx_stage: Vec::with_capacity(BURST),
        }
    }

    /// Frames one message into a fresh mbuf: userspace protocol stack,
    /// the application's own job once the kernel is bypassed.
    fn send(&self, dst_host: HostId, seq: u32, payload: &[u8]) {
        let dst_ip = Ipv4Header::addr_for_host(dst_host.index());
        let dst_mac = self.neighbors.resolve(dst_ip).expect("ARP entry");
        let msg_len = 5 + payload.len();
        let mut mbuf = self
            .port
            .alloc_mbuf(FRAME_OVERHEAD + msg_len)
            .expect("mbuf alloc");
        // Application header behind the transport headers.
        mbuf[FRAME_OVERHEAD] = MSG_MAGIC;
        mbuf[FRAME_OVERHEAD + 1..FRAME_OVERHEAD + 5].copy_from_slice(&seq.to_le_bytes());
        mbuf[FRAME_OVERHEAD + 5..].copy_from_slice(payload);
        PacketBuilder::new()
            .src_mac(self.mac)
            .dst_mac(dst_mac)
            .src(self.ip, UDP_PORT)
            .dst(dst_ip, UDP_PORT)
            .identification(seq as u16)
            .finish_in_place(&mut mbuf, msg_len)
            .expect("framing");
        let dst = Endpoint {
            host: dst_host,
            port: 0,
        };
        self.port.tx_burst(dst, [mbuf]).expect("tx burst");
    }

    /// Busy-polls the RX ring, parses and validates every packet through
    /// the userspace stack, and returns the first matching message.
    fn recv_busy(&mut self, expect_seq: u32) -> Vec<u8> {
        loop {
            if self.rx_stage.is_empty() {
                self.port.rx_burst(&mut self.rx_stage, BURST);
            }
            while let Some(packet) = self.rx_stage.pop() {
                let bytes = packet.payload.as_slice();
                let Ok(view) = PacketView::parse(bytes) else {
                    continue; // malformed frame: drop
                };
                if view.ipv4().dst != self.ip || view.udp().dst_port != UDP_PORT {
                    continue; // not addressed to this application
                }
                let msg = view.payload();
                if msg.len() < 5 || msg[0] != MSG_MAGIC {
                    continue;
                }
                let seq = u32::from_le_bytes([msg[1], msg[2], msg[3], msg[4]]);
                if seq != expect_seq {
                    continue; // stale packet from an earlier round
                }
                return msg[5..].to_vec();
            }
            core::hint::spin_loop();
        }
    }
}

/// Runs `iters` ping-pong round trips of `payload` bytes and returns the
/// samples.
pub fn run(profile: TestbedProfile, payload: usize, iters: usize) -> Results {
    let fabric = Fabric::new(profile);
    let host_a = fabric.add_host("client");
    let host_b = fabric.add_host("server");
    let mut client = DpdkApp::init(&fabric, host_a, 2);
    let mut server = DpdkApp::init(&fabric, host_b, 2);

    let payload_bytes = vec![0u8; payload];
    let mut rtt_ns = Vec::with_capacity(iters);
    for i in 0..iters {
        let seq = i as u32;
        let t0 = Instant::now();
        client.send(host_b, seq, &payload_bytes);
        let ping = server.recv_busy(seq);
        server.send(host_a, seq, &ping);
        let pong = client.recv_busy(seq);
        assert_eq!(pong.len(), payload, "echo must be intact");
        rtt_ns.push(t0.elapsed().as_nanos() as u64);
    }
    Results { rtt_ns }
}
