//! The benchmarking application over the INSANE API (Table 3 row 1).
//!
//! Everything network-related is four calls: create a stream with the
//! desired QoS, open a source and a sink, exchange buffers.  No
//! technology-specific setup appears anywhere: the same code runs over
//! kernel UDP, XDP, DPDK or RDMA depending on the QoS policy and on what
//! the hosting node offers.

use std::time::Instant;

use insane_core::runtime::poll_until_quiescent;
use insane_core::{
    ChannelId, ConsumeMode, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session, ThreadingMode,
};
use insane_fabric::{Fabric, Technology, TestbedProfile};

/// Measured results of one run.
pub struct Results {
    /// RTT samples in nanoseconds.
    pub rtt_ns: Vec<u64>,
}

/// Runs `iters` ping-pong round trips of `payload` bytes and returns the
/// samples.
pub fn run(profile: TestbedProfile, qos: QosPolicy, payload: usize, iters: usize) -> Results {
    // loc:skip-begin — deployment plumbing: in a real edge deployment
    // the runtimes are already running as host services; this harness
    // must create both of them in-process.
    let fabric = Fabric::new(profile);
    let host_a = fabric.add_host("client");
    let host_b = fabric.add_host("server");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&techs)
            .with_threading(ThreadingMode::Manual)
    };
    let rt_a = Runtime::start(config(1), &fabric, host_a).expect("runtime");
    let rt_b = Runtime::start(config(2), &fabric, host_b).expect("runtime");
    rt_a.add_peer(host_b).expect("peering");
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);
    // loc:skip-end

    // The application itself.
    let session_a = Session::connect(&rt_a).expect("session");
    let session_b = Session::connect(&rt_b).expect("session");
    let stream_a = session_a.create_stream(qos).expect("stream");
    let stream_b = session_b.create_stream(qos).expect("stream");
    let hot = stream_a.technology();
    let ping_sink = stream_b.create_sink(ChannelId(1)).expect("sink");
    let pong_sink = stream_a.create_sink(ChannelId(2)).expect("sink");
    // loc:skip-begin — subscription propagation happens in the
    // background on a deployed runtime's threads.
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);
    // loc:skip-end
    let ping_source = stream_a.create_source(ChannelId(1)).expect("source");
    let pong_source = stream_b.create_source(ChannelId(2)).expect("source");
    // loc:skip-begin
    poll_until_quiescent(&[&rt_a, &rt_b], 100_000);
    // loc:skip-end

    let payload_bytes = vec![0u8; payload];
    let mut rtt_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut buf = ping_source.get_buffer(payload).expect("buffer");
        buf.copy_from_slice(&payload_bytes);
        ping_source.emit(buf).expect("emit");
        let ping = loop {
            // loc:skip-begin — inline drive of both runtimes' polling
            // threads (single-core harness).
            rt_a.poll_technology(hot);
            rt_b.poll_technology(hot);
            // loc:skip-end
            match ping_sink.consume(ConsumeMode::NonBlocking) {
                Ok(msg) => break msg,
                Err(InsaneError::WouldBlock) => continue,
                Err(e) => panic!("consume: {e}"),
            }
        };
        let mut echo = pong_source.get_buffer(ping.len()).expect("buffer");
        echo.copy_from_slice(&ping);
        ping.release();
        pong_source.emit(echo).expect("emit");
        loop {
            // loc:skip-begin
            rt_a.poll_technology(hot);
            rt_b.poll_technology(hot);
            // loc:skip-end
            match pong_sink.consume(ConsumeMode::NonBlocking) {
                Ok(msg) => {
                    msg.release();
                    break;
                }
                Err(InsaneError::WouldBlock) => continue,
                Err(e) => panic!("consume: {e}"),
            }
        }
        rtt_ns.push(t0.elapsed().as_nanos() as u64);
    }
    Results { rtt_ns }
}
