//! The benchmarking application, written three times (Table 3).
//!
//! The paper quantifies ease of use by implementing the same
//! latency/throughput benchmarking application against three interfaces
//! and counting lines of code: 189 lines with INSANE, 227 with UDP
//! sockets (+20 %), 384 with native DPDK (+103 %).  These modules are the
//! Rust equivalents — each is a complete, runnable ping-pong application
//! against one interface, and `table3` counts their effective lines
//! directly from the embedded sources.

pub mod dpdk_app;
pub mod insane_app;
pub mod udp_app;

/// Source text of the INSANE implementation.
pub const INSANE_APP_SRC: &str = include_str!("insane_app.rs");
/// Source text of the UDP-socket implementation.
pub const UDP_APP_SRC: &str = include_str!("udp_app.rs");
/// Source text of the native-DPDK implementation.
pub const DPDK_APP_SRC: &str = include_str!("dpdk_app.rs");

/// Counts effective lines of code: non-blank, non-comment (the counting
/// convention of the paper's Table 3).  Regions between `loc:skip-begin`
/// and `loc:skip-end` markers are excluded: they contain single-process
/// harness plumbing (deploying both runtimes, driving their polling work
/// inline) that a real deployment gets from the middleware service and
/// that none of the paper's applications contain.
pub fn loc(source: &str) -> usize {
    let mut skipping = false;
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            if l.contains("loc:skip-begin") {
                skipping = true;
            }
            let counted = !skipping;
            if l.contains("loc:skip-end") {
                skipping = false;
            }
            counted
        })
        .filter(|l| !l.is_empty())
        .filter(|l| !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ignores_blanks_and_comments() {
        let src = "fn main() {\n\n// comment\n    let x = 1; // trailing\n}\n";
        assert_eq!(loc(src), 3);
    }

    #[test]
    fn loc_skips_marked_harness_regions() {
        let src = "a();\n// loc:skip-begin\nharness();\nmore();\n// loc:skip-end\nb();\n";
        assert_eq!(loc(src), 2);
    }

    #[test]
    fn app_loc_ordering_matches_table3() {
        let insane = loc(INSANE_APP_SRC);
        let udp = loc(UDP_APP_SRC);
        let dpdk = loc(DPDK_APP_SRC);
        assert!(
            insane < udp && udp < dpdk,
            "Table 3 ordering violated: insane={insane} udp={udp} dpdk={dpdk}"
        );
        // The native-DPDK version should be roughly twice the INSANE one.
        assert!(
            dpdk as f64 / insane as f64 > 1.6,
            "dpdk={dpdk} insane={insane}"
        );
    }
}
