//! BENCH JSON export (`BENCH_latency.json` / `BENCH_throughput.json`).
//!
//! The experiment tables print for humans; the BENCH files are the
//! machine-readable record: schema-tagged JSON documents written next
//! to the CSVs under `target/experiments/`, validated by
//! [`insane_telemetry::schema`] on both ends (the writer here, and
//! `insanectl check-bench` / the CI bench-smoke job after the fact).

use std::fs;
use std::path::PathBuf;

use insane_telemetry::{
    validate_bench_hotpath, validate_bench_ipc, validate_bench_isolation, validate_bench_latency,
    validate_bench_noisy_neighbor, validate_bench_throughput, Value, BENCH_HOTPATH_SCHEMA,
    BENCH_IPC_SCHEMA, BENCH_ISOLATION_SCHEMA, BENCH_LATENCY_SCHEMA, BENCH_NOISY_NEIGHBOR_SCHEMA,
    BENCH_THROUGHPUT_SCHEMA,
};

use crate::report::experiments_dir;
use crate::stats::Series;
use crate::BenchError;

/// One latency measurement: a system × testbed × payload RTT series.
#[derive(Debug, Clone)]
pub struct LatencyEntry {
    /// System label as printed in the tables (e.g. "INSANE fast").
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// The measured RTT samples, nanoseconds.
    pub series: Series,
}

impl LatencyEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("payload_bytes", (self.payload_bytes as u64).into()),
            ("samples", (self.series.len() as u64).into()),
            ("p50_ns", self.series.median().into()),
            ("p90_ns", self.series.p90().into()),
            ("p99_ns", self.series.p99().into()),
            ("p999_ns", self.series.p999().into()),
            ("mean_ns", self.series.mean().into()),
            ("min_ns", self.series.min().into()),
            ("max_ns", self.series.max().into()),
        ])
    }
}

/// One throughput measurement: a system × testbed × payload goodput.
#[derive(Debug, Clone)]
pub struct ThroughputEntry {
    /// System label as printed in the tables.
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Number of messages pushed through the pipeline.
    pub messages: usize,
    /// Measured goodput in Gbit/s.
    pub goodput_gbps: f64,
}

impl ThroughputEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("payload_bytes", (self.payload_bytes as u64).into()),
            ("messages", (self.messages as u64).into()),
            ("goodput_gbps", self.goodput_gbps.into()),
        ])
    }
}

/// One noisy-neighbor isolation measurement: the victim tenant's p99
/// solo vs contended, plus the tenants' typed-rejection counts.
#[derive(Debug, Clone)]
pub struct NoisyNeighborEntry {
    /// System label as printed in the tables.
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Victim RTT samples per phase.
    pub samples: usize,
    /// Victim p99 with no bulk traffic, nanoseconds.
    pub solo_p99_ns: u64,
    /// Victim p99 under bulk saturation, nanoseconds.
    pub contended_p99_ns: u64,
    /// Contended/solo p99 ratio in thousandths (fixed point).
    pub isolation_ratio_x1000: u64,
    /// Maximum permitted ratio in thousandths.
    pub bound_x1000: u64,
    /// Typed refusals the saturating tenant received (must be ≥ 1).
    pub bulk_rejections: u64,
    /// Typed refusals the victim received (must be 0).
    pub victim_rejections: u64,
}

impl NoisyNeighborEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("payload_bytes", (self.payload_bytes as u64).into()),
            ("samples", (self.samples as u64).into()),
            ("solo_p99_ns", self.solo_p99_ns.into()),
            ("contended_p99_ns", self.contended_p99_ns.into()),
            ("isolation_ratio_x1000", self.isolation_ratio_x1000.into()),
            ("bound_x1000", self.bound_x1000.into()),
            ("bulk_rejections", self.bulk_rejections.into()),
            ("victim_rejections", self.victim_rejections.into()),
        ])
    }
}

/// One mixed-criticality load point: the critical flow's one-way
/// latency quantiles at a given bulk burst size, plus the timing-gate
/// and fault-injection record (see `BENCH_isolation.json` and
/// DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct IsolationEntry {
    /// System label as printed in the tables.
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Delivered critical one-way samples at this load point.
    pub samples: usize,
    /// Bulk emit attempts per critical round (0 = solo baseline).
    pub bulk_burst: usize,
    /// Critical one-way p50, nanoseconds.
    pub p50_ns: u64,
    /// Critical one-way p99, nanoseconds.
    pub p99_ns: u64,
    /// Critical one-way p99.9, nanoseconds.
    pub p999_ns: u64,
    /// The solo baseline's p99.9, nanoseconds (ratio denominator).
    pub solo_p999_ns: u64,
    /// Per-message latency budget, nanoseconds.
    pub budget_ns: u64,
    /// Delivered messages that exceeded the budget (must be 0).
    pub budget_violations: u64,
    /// This load point's p99.9 over the solo p99.9, fixed-point
    /// thousandths.
    pub ratio_x1000: u64,
    /// Maximum permitted ratio in thousandths.
    pub bound_x1000: u64,
    /// Frames the time-aware gates held back (guard band or window
    /// close) during this load point, summed over traffic classes.
    pub gate_deferrals: u64,
    /// Critical rounds lost to the fault injector (deadline expired).
    pub lost: u64,
    /// Typed refusals the bulk tenant received.
    pub bulk_rejections: u64,
    /// Frames the seeded fault injector dropped.
    pub injected_drops: u64,
    /// Frames the seeded fault injector reordered.
    pub reorders: u64,
}

impl IsolationEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("samples", (self.samples as u64).into()),
            ("bulk_burst", (self.bulk_burst as u64).into()),
            ("p50_ns", self.p50_ns.into()),
            ("p99_ns", self.p99_ns.into()),
            ("p999_ns", self.p999_ns.into()),
            ("solo_p999_ns", self.solo_p999_ns.into()),
            ("budget_ns", self.budget_ns.into()),
            ("budget_violations", self.budget_violations.into()),
            ("ratio_x1000", self.ratio_x1000.into()),
            ("bound_x1000", self.bound_x1000.into()),
            ("gate_deferrals", self.gate_deferrals.into()),
            ("lost", self.lost.into()),
            ("bulk_rejections", self.bulk_rejections.into()),
            ("injected_drops", self.injected_drops.into()),
            ("reorders", self.reorders.into()),
        ])
    }
}

/// One hot-path measurement: locked vs snapshot control-state reads,
/// uncontended and under a live writer, plus the reload-under-load
/// integrity counts (see `BENCH_hotpath.json` and DESIGN.md §12).
#[derive(Debug, Clone)]
pub struct HotpathEntry {
    /// System label as printed in the tables.
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Reads per timed measurement.
    pub samples: usize,
    /// Mean uncontended `RwLock` read, thousandths of a nanosecond.
    pub locked_read_ns_x1000: u64,
    /// Mean uncontended snapshot refresh+read, thousandths of a ns.
    pub snapshot_read_ns_x1000: u64,
    /// snapshot/locked uncontended ratio, fixed-point thousandths.
    pub uncontended_ratio_x1000: u64,
    /// Maximum permitted uncontended ratio in thousandths.
    pub uncontended_bound_x1000: u64,
    /// p99 of a locked read while a writer republishes, nanoseconds.
    pub locked_p99_ns: u64,
    /// p99 of a snapshot read while a writer republishes, nanoseconds.
    pub snapshot_p99_ns: u64,
    /// snapshot/locked contended-p99 ratio, fixed-point thousandths.
    pub contended_ratio_x1000: u64,
    /// Maximum permitted contended ratio in thousandths.
    pub contended_bound_x1000: u64,
    /// Live tunables reloads performed while traffic flowed (≥ 1).
    pub reloads: u64,
    /// Messages lost across the reloads (must be 0).
    pub dropped: u64,
    /// Messages delivered out of order across the reloads (must be 0).
    pub reordered: u64,
}

impl HotpathEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("samples", (self.samples as u64).into()),
            ("locked_read_ns_x1000", self.locked_read_ns_x1000.into()),
            ("snapshot_read_ns_x1000", self.snapshot_read_ns_x1000.into()),
            (
                "uncontended_ratio_x1000",
                self.uncontended_ratio_x1000.into(),
            ),
            (
                "uncontended_bound_x1000",
                self.uncontended_bound_x1000.into(),
            ),
            ("locked_p99_ns", self.locked_p99_ns.into()),
            ("snapshot_p99_ns", self.snapshot_p99_ns.into()),
            ("contended_ratio_x1000", self.contended_ratio_x1000.into()),
            ("contended_bound_x1000", self.contended_bound_x1000.into()),
            ("reloads", self.reloads.into()),
            ("dropped", self.dropped.into()),
            ("reordered", self.reordered.into()),
        ])
    }
}

/// One process-split measurement: in-process vs cross-process round
/// trips plus the crash-reclaim outcome.
#[derive(Debug, Clone)]
pub struct IpcEntry {
    /// System label as printed in the tables.
    pub system: String,
    /// Testbed profile name.
    pub testbed: String,
    /// Round trips timed per deployment.
    pub messages: usize,
    /// In-process round-trip p50, nanoseconds.
    pub in_process_p50_ns: u64,
    /// In-process round-trip p99, nanoseconds.
    pub in_process_p99_ns: u64,
    /// Cross-process round-trip p50, nanoseconds.
    pub cross_process_p50_ns: u64,
    /// Cross-process round-trip p99, nanoseconds.
    pub cross_process_p99_ns: u64,
    /// cross/in-process p99 ratio, fixed-point thousandths.
    pub ratio_x1000: u64,
    /// Maximum permitted ratio in thousandths.
    pub bound_x1000: u64,
    /// Attach slow path (connect → handshake → mmap), nanoseconds.
    pub attach_ns: u64,
    /// Death-to-reclaim latency after `kill -9`, nanoseconds.
    pub reclaim_ns: u64,
    /// Slots force-reclaimed from the crashed client (≥ 1).
    pub reclaimed_slots: u64,
    /// Slots still outstanding after the reclaim (must be 0).
    pub leaked_slots: u64,
}

impl IpcEntry {
    fn to_value(&self) -> Value {
        Value::object([
            ("system", self.system.as_str().into()),
            ("testbed", self.testbed.as_str().into()),
            ("messages", (self.messages as u64).into()),
            ("in_process_p50_ns", self.in_process_p50_ns.into()),
            ("in_process_p99_ns", self.in_process_p99_ns.into()),
            ("cross_process_p50_ns", self.cross_process_p50_ns.into()),
            ("cross_process_p99_ns", self.cross_process_p99_ns.into()),
            ("ratio_x1000", self.ratio_x1000.into()),
            ("bound_x1000", self.bound_x1000.into()),
            ("attach_ns", self.attach_ns.into()),
            ("reclaim_ns", self.reclaim_ns.into()),
            ("reclaimed_slots", self.reclaimed_slots.into()),
            ("leaked_slots", self.leaked_slots.into()),
        ])
    }
}

fn document(schema: &str, entries: Vec<Value>) -> Value {
    Value::object([
        ("schema", schema.into()),
        ("factor", crate::bench_factor().into()),
        ("entries", Value::Array(entries)),
    ])
}

fn write_doc(name: &str, doc: &Value) -> Result<PathBuf, BenchError> {
    let dir = experiments_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, format!("{doc}\n"))?;
    println!("[bench] {}", path.display());
    Ok(path)
}

/// Writes `BENCH_latency.json` and returns its path.
///
/// The document is validated against [`BENCH_LATENCY_SCHEMA`] before it
/// is written, so an export bug fails the run instead of producing a
/// file CI would reject later.
///
/// # Errors
///
/// Fails on schema violations (e.g. an empty series) or I/O errors.
pub fn write_latency(entries: &[LatencyEntry]) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_LATENCY_SCHEMA,
        entries.iter().map(LatencyEntry::to_value).collect(),
    );
    validate_bench_latency(&doc).map_err(|e| BenchError::Other(format!("latency export: {e}")))?;
    write_doc("BENCH_latency.json", &doc)
}

/// Writes `BENCH_throughput.json` and returns its path.
///
/// # Errors
///
/// Fails on schema violations (e.g. zero goodput) or I/O errors.
pub fn write_throughput(entries: &[ThroughputEntry]) -> Result<PathBuf, BenchError> {
    write_throughput_named("BENCH_throughput.json", entries)
}

/// Writes a throughput-schema document under an explicit file name, for
/// experiments that export alongside the canonical `BENCH_throughput.json`
/// (e.g. `BENCH_shard_throughput.json` from the shard scale-out bench).
///
/// # Errors
///
/// Fails on schema violations (e.g. zero goodput) or I/O errors.
pub fn write_throughput_named(
    name: &str,
    entries: &[ThroughputEntry],
) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_THROUGHPUT_SCHEMA,
        entries.iter().map(ThroughputEntry::to_value).collect(),
    );
    validate_bench_throughput(&doc)
        .map_err(|e| BenchError::Other(format!("{name} export: {e}")))?;
    write_doc(name, &doc)
}

/// Writes `BENCH_noisy_neighbor.json` and returns its path.
///
/// Validated against [`BENCH_NOISY_NEIGHBOR_SCHEMA`] before writing, so
/// a violated isolation bound (or a missing rejection count) fails the
/// bench run itself, not just a later `check-bench`.
///
/// # Errors
///
/// Fails on schema violations — including `isolation_ratio_x1000 >
/// bound_x1000` — or I/O errors.
pub fn write_noisy_neighbor(entries: &[NoisyNeighborEntry]) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_NOISY_NEIGHBOR_SCHEMA,
        entries.iter().map(NoisyNeighborEntry::to_value).collect(),
    );
    validate_bench_noisy_neighbor(&doc)
        .map_err(|e| BenchError::Other(format!("noisy-neighbor export: {e}")))?;
    write_doc("BENCH_noisy_neighbor.json", &doc)
}

/// Writes `BENCH_isolation.json` and returns its path.
///
/// Validated against [`BENCH_ISOLATION_SCHEMA`] before writing, so a
/// missed latency budget, a violated p99.9 bound, a missing solo
/// baseline, or a run in which the gates never deferred a frame fails
/// the bench run itself, not just a later `check-bench`.
///
/// # Errors
///
/// Fails on schema violations or I/O errors.
pub fn write_isolation(entries: &[IsolationEntry]) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_ISOLATION_SCHEMA,
        entries.iter().map(IsolationEntry::to_value).collect(),
    );
    validate_bench_isolation(&doc)
        .map_err(|e| BenchError::Other(format!("isolation export: {e}")))?;
    write_doc("BENCH_isolation.json", &doc)
}

/// Writes `BENCH_hotpath.json` and returns its path.
///
/// Validated against [`BENCH_HOTPATH_SCHEMA`] before writing, so a
/// regression (snapshot slower than the lock it replaced, or a message
/// lost across a live reload) fails the bench run itself, not just a
/// later `check-bench`.
///
/// # Errors
///
/// Fails on schema violations — including a violated uncontended or
/// contended ratio bound — or I/O errors.
pub fn write_hotpath(entries: &[HotpathEntry]) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_HOTPATH_SCHEMA,
        entries.iter().map(HotpathEntry::to_value).collect(),
    );
    validate_bench_hotpath(&doc).map_err(|e| BenchError::Other(format!("hotpath export: {e}")))?;
    write_doc("BENCH_hotpath.json", &doc)
}

/// Writes `BENCH_ipc.json` and returns its path.
///
/// Validated against [`BENCH_IPC_SCHEMA`] before writing; a gate
/// violation (overhead past the bound, leaked slots, missing reclaim)
/// fails the run here rather than in CI.
///
/// # Errors
///
/// Fails on schema violations or I/O errors.
pub fn write_ipc(entries: &[IpcEntry]) -> Result<PathBuf, BenchError> {
    let doc = document(
        BENCH_IPC_SCHEMA,
        entries.iter().map(IpcEntry::to_value).collect(),
    );
    validate_bench_ipc(&doc).map_err(|e| BenchError::Other(format!("ipc export: {e}")))?;
    write_doc("BENCH_ipc.json", &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_entry_serializes_the_full_quantile_ladder() {
        let entry = LatencyEntry {
            system: "test".into(),
            testbed: "Local".into(),
            payload_bytes: 64,
            series: Series::from_samples((1..=1000).collect()),
        };
        let doc = document(BENCH_LATENCY_SCHEMA, vec![entry.to_value()]);
        insane_telemetry::validate_bench_latency(&doc).unwrap();
        let text = doc.to_string();
        let back = Value::parse(&text).unwrap();
        insane_telemetry::validate_bench_latency(&back).unwrap();
        let e = &back.get("entries").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("samples").unwrap().as_u64(), Some(1000));
        // Nearest-rank p99.9 over 1..=1000: rank 998 → sample 999.
        assert_eq!(e.get("p999_ns").unwrap().as_u64(), Some(999));
    }

    #[test]
    fn empty_series_fails_validation_instead_of_exporting() {
        let entry = LatencyEntry {
            system: "test".into(),
            testbed: "Local".into(),
            payload_bytes: 64,
            series: Series::new(),
        };
        let doc = document(BENCH_LATENCY_SCHEMA, vec![entry.to_value()]);
        assert!(insane_telemetry::validate_bench_latency(&doc).is_err());
    }

    #[test]
    fn throughput_round_trips_through_the_parser() {
        let entry = ThroughputEntry {
            system: "INSANE fast".into(),
            testbed: "Local".into(),
            payload_bytes: 1024,
            messages: 6000,
            goodput_gbps: 12.25,
        };
        let doc = document(BENCH_THROUGHPUT_SCHEMA, vec![entry.to_value()]);
        insane_telemetry::validate_bench_throughput(&doc).unwrap();
        let back = Value::parse(&doc.to_string()).unwrap();
        let e = &back.get("entries").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("goodput_gbps").unwrap().as_f64(), Some(12.25));
    }
}
