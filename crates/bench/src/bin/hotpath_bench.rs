//! Hot-path read runner: measures locked vs snapshot control-state
//! reads (uncontended mean and contended p99), streams sequenced
//! traffic across live tunables reloads, exports the schema-validated
//! `BENCH_hotpath.json`, and fails unless the snapshot design is no
//! slower uncontended, no worse at the contended tail, and the reloads
//! were loss- and reorder-free.
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3).

use insane_bench::export::{write_hotpath, HotpathEntry};
use insane_bench::hotpath::{self, CONTENDED_BOUND_X1000, UNCONTENDED_BOUND_X1000};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;

fn main() {
    if let Err(e) = run() {
        eprintln!("hotpath bench failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let samples = iters(100_000);
    let messages = iters(2_000) as u64;

    println!("hot path: {samples} reads/phase, {messages} sequenced messages across live reloads");
    let report = hotpath::run(&profile, samples, messages)?;

    println!(
        "uncontended read: locked {:.1}ns, snapshot {:.1}ns -> ratio {:.3}x (bound {:.3}x)",
        report.locked_read_ns_x1000 as f64 / 1e3,
        report.snapshot_read_ns_x1000 as f64 / 1e3,
        report.uncontended_ratio_x1000() as f64 / 1e3,
        UNCONTENDED_BOUND_X1000 as f64 / 1e3,
    );
    println!(
        "contended p99: locked {:.2}us, snapshot {:.2}us -> ratio {:.3}x (bound {:.3}x)",
        report.locked_contended.p99() as f64 / 1e3,
        report.snapshot_contended.p99() as f64 / 1e3,
        report.contended_ratio_x1000() as f64 / 1e3,
        CONTENDED_BOUND_X1000 as f64 / 1e3,
    );
    println!(
        "reload under load: {} reloads across {} messages, {} dropped, {} reordered",
        report.reloads, report.sent, report.dropped, report.reordered
    );

    // The export validator enforces all three gates; a regression fails
    // here, before CI sees the artifact.
    write_hotpath(&[HotpathEntry {
        system: "INSANE hot path".into(),
        testbed: profile.name.into(),
        samples: report.samples,
        locked_read_ns_x1000: report.locked_read_ns_x1000,
        snapshot_read_ns_x1000: report.snapshot_read_ns_x1000,
        uncontended_ratio_x1000: report.uncontended_ratio_x1000(),
        uncontended_bound_x1000: UNCONTENDED_BOUND_X1000,
        locked_p99_ns: report.locked_contended.p99(),
        snapshot_p99_ns: report.snapshot_contended.p99(),
        contended_ratio_x1000: report.contended_ratio_x1000(),
        contended_bound_x1000: CONTENDED_BOUND_X1000,
        reloads: report.reloads,
        dropped: report.dropped,
        reordered: report.reordered,
    }])?;
    Ok(())
}
