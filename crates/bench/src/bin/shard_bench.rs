//! Shard scale-out runner: aggregate multi-stream throughput at each
//! requested `shards_per_datapath`, exported as the schema-validated
//! `BENCH_shard_throughput.json` under `target/experiments/`.
//!
//! Usage: `shard_bench [--per-shard-pool] [SHARDS...]` (default
//! `1 2 4 8`).  `--per-shard-pool` scales the slot pools and sink
//! queues with the shard count, isolating polling-engine scaling from
//! pool contention at high shard counts.  When both the 1- and 2-shard
//! points are measured, the run fails unless 2 shards deliver at least
//! 1.3x the 1-shard aggregate message rate — the scale-out contract of
//! the sharded polling engine.
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3).

use insane_bench::export::write_throughput_named;
use insane_bench::shard_bench::{self, ShardRun, PAYLOAD, STREAMS};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;

/// Required 2-shard speed-up over 1 shard in aggregate msgs/sec.
const MIN_SPEEDUP: f64 = 1.3;

fn main() {
    if let Err(e) = run() {
        eprintln!("shard bench failed: {e}");
        std::process::exit(1);
    }
}

fn parse_args() -> Result<(Vec<usize>, bool), BenchError> {
    let mut per_shard_pool = false;
    let mut shards = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--per-shard-pool" {
            per_shard_pool = true;
            continue;
        }
        let s = a
            .parse::<usize>()
            .ok()
            .filter(|&s| (1..=64).contains(&s))
            .ok_or_else(|| BenchError::Other(format!("bad shard count {a:?} (want 1..=64)")))?;
        shards.push(s);
    }
    if shards.is_empty() {
        shards = vec![1, 2, 4, 8];
    }
    Ok((shards, per_shard_pool))
}

fn run() -> Result<(), BenchError> {
    let (shard_counts, per_shard_pool) = parse_args()?;
    let profile = TestbedProfile::local();
    let target = iters(6_000);

    println!(
        "shard scale-out: {STREAMS} streams x {PAYLOAD} B over DPDK, \
         {target} messages per point{}",
        if per_shard_pool {
            " (pools scaled per shard)"
        } else {
            ""
        }
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "shards", "msgs/sec", "goodput Gbps", "bottleneck"
    );

    let mut runs: Vec<ShardRun> = Vec::new();
    for &shards in &shard_counts {
        let run = shard_bench::run_with(&profile, shards, target, per_shard_pool)?;
        let tx = run.tx_shard_ns.iter().copied().max().unwrap_or(0);
        let rx = run.rx_shard_ns.iter().copied().max().unwrap_or(0);
        let side = if tx >= rx { "tx" } else { "rx" };
        println!(
            "{:>6} {:>12.0} {:>14.3} {:>9} {side}",
            run.shards,
            run.msgs_per_sec(),
            run.goodput_gbps(),
            format_ns(run.bottleneck_ns()),
        );
        runs.push(run);
    }

    let entries: Vec<_> = runs.iter().map(|r| r.entry(profile.name)).collect();
    write_throughput_named("BENCH_shard_throughput.json", &entries)?;

    let rate = |shards: usize| {
        runs.iter()
            .find(|r| r.shards == shards)
            .map(ShardRun::msgs_per_sec)
    };
    if let (Some(one), Some(two)) = (rate(1), rate(2)) {
        let speedup = two / one.max(f64::MIN_POSITIVE);
        println!("2-shard speed-up over 1 shard: {speedup:.2}x (required {MIN_SPEEDUP}x)");
        if speedup < MIN_SPEEDUP {
            return Err(BenchError::Other(format!(
                "2 shards reached only {speedup:.2}x of the 1-shard rate \
                 (required {MIN_SPEEDUP}x)"
            )));
        }
    }
    Ok(())
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}
