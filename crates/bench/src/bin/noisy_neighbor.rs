//! Noisy-neighbor isolation runner: measures a well-behaved tenant's
//! RTT p99 solo and under a saturating bulk tenant, exports the
//! schema-validated `BENCH_noisy_neighbor.json`, and fails unless the
//! contended p99 stays within the 2x isolation bound while the bulk
//! tenant's overflow was refused with typed errors.
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3).

use insane_bench::export::{write_noisy_neighbor, NoisyNeighborEntry};
use insane_bench::noisy_neighbor::{self, BULK_BURST, ISOLATION_BOUND_X1000, PAYLOAD};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;

fn main() {
    if let Err(e) = run() {
        eprintln!("noisy-neighbor bench failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let rounds = iters(200);
    // Warmup also floods, so the bulk bucket is already dry when
    // measurement starts — even at tiny bench factors.
    let warmup = 30;

    println!(
        "noisy neighbor: {rounds} victim RTTs x {PAYLOAD} B over DPDK, \
         bulk bursts of {BULK_BURST} per round"
    );
    let report = noisy_neighbor::run(&profile, rounds, warmup)?;

    let ratio = report.isolation_ratio_x1000();
    println!(
        "victim p99: solo {:.2}us, contended {:.2}us -> ratio {:.3}x (bound {:.3}x)",
        report.solo.p99() as f64 / 1e3,
        report.contended.p99() as f64 / 1e3,
        ratio as f64 / 1e3,
        ISOLATION_BOUND_X1000 as f64 / 1e3,
    );
    println!(
        "bulk tenant: {} typed rejections; victim: {}",
        report.bulk_rejections, report.victim_rejections
    );

    // The export validator enforces the isolation gate and the
    // rejection invariants; a violated bound fails here, before CI.
    write_noisy_neighbor(&[NoisyNeighborEntry {
        system: "INSANE multi-tenant".into(),
        testbed: profile.name.into(),
        payload_bytes: PAYLOAD,
        samples: report.contended.len(),
        solo_p99_ns: report.solo.p99(),
        contended_p99_ns: report.contended.p99(),
        isolation_ratio_x1000: ratio,
        bound_x1000: ISOLATION_BOUND_X1000,
        bulk_rejections: report.bulk_rejections,
        victim_rejections: report.victim_rejections,
    }])?;
    Ok(())
}
