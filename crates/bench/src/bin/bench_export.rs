//! BENCH smoke runner: measures a representative latency/throughput
//! subset and writes schema-validated `BENCH_latency.json` /
//! `BENCH_throughput.json` under `target/experiments/`.
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3 for a
//! fast smoke; 1.0 is the quick default, 10+ approaches paper scale).

use insane_bench::export::{write_latency, write_throughput, LatencyEntry, ThroughputEntry};
use insane_bench::latency::{rtt_series, System};
use insane_bench::throughput::{goodput_gbps, TputSystem};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;

fn main() {
    if let Err(e) = run() {
        eprintln!("bench export failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let n = iters(300);
    let warmup = iters(30);

    let mut latency = Vec::new();
    for system in [
        System::UdpNonBlocking,
        System::InsaneSlow,
        System::InsaneFast,
        System::RawDpdk,
    ] {
        for payload in [64usize, 1024] {
            latency.push(LatencyEntry {
                system: system.label().to_owned(),
                testbed: profile.name.to_owned(),
                payload_bytes: payload,
                series: rtt_series(system, &profile, payload, n, warmup)?,
            });
        }
    }
    let latency_path = write_latency(&latency)?;

    let msgs = iters(6_000);
    let mut throughput = Vec::new();
    for system in [
        TputSystem::KernelUdp,
        TputSystem::InsaneSlow,
        TputSystem::InsaneFast,
        TputSystem::RawDpdk,
    ] {
        for payload in [1024usize, 8192] {
            throughput.push(ThroughputEntry {
                system: system.label().to_owned(),
                testbed: profile.name.to_owned(),
                payload_bytes: payload,
                messages: msgs,
                goodput_gbps: goodput_gbps(system, &profile, payload, msgs)?,
            });
        }
    }
    let throughput_path = write_throughput(&throughput)?;

    println!(
        "wrote {} and {}",
        latency_path.display(),
        throughput_path.display()
    );
    Ok(())
}
