//! Process-split runner: in-process baseline vs a real daemon in a
//! second OS process, plus a crash-reclaim phase, exported as the
//! schema-validated `BENCH_ipc.json`.
//!
//! The binary re-execs itself for the helper roles, so one artifact is
//! the whole experiment:
//!
//! * `ipc_bench` — orchestrates all three phases;
//! * `ipc_bench --serve <socket>` — runs the daemon (child process);
//! * `ipc_bench --crash <socket>` — attaches, checks slots out, and
//!   aborts without cleanup (the victim).
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use insane_bench::export::{write_ipc, IpcEntry};
use insane_bench::ipc_bench::{self, BOUND_X1000, CRASH_SLOTS};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;
use insane_ipc::{IpcClient, IpcServer, ServerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let result = match (args.next().as_deref(), args.next()) {
        (Some("--serve"), Some(socket)) => serve(Path::new(&socket)),
        (Some("--crash"), Some(socket)) => crash(Path::new(&socket)),
        (None, _) => run(),
        (Some(other), _) => Err(BenchError::Other(format!(
            "usage: ipc_bench [--serve <socket> | --crash <socket>], got {other:?}"
        ))),
    };
    if let Err(e) = result {
        eprintln!("ipc bench failed: {e}");
        std::process::exit(1);
    }
}

fn ipc_err(stage: &str, e: insane_ipc::IpcError) -> BenchError {
    BenchError::Other(format!("{stage}: {e}"))
}

/// Child role: the runtime daemon.  Prints the ready line the parent
/// waits for, then serves until a client requests shutdown.
fn serve(socket: &Path) -> Result<(), BenchError> {
    let server = IpcServer::start(ServerConfig::new(socket)).map_err(|e| ipc_err("serve", e))?;
    println!("insaned listening on {}", server.socket_path().display());
    std::io::stdout().flush().map_err(BenchError::Io)?;
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
    Ok(())
}

/// Child role: the crash victim.  Mirrors `insane-ipc-crasher --abort`:
/// checks [`CRASH_SLOTS`] slots out (half in flight, half held) and dies
/// without running a destructor.
fn crash(socket: &Path) -> Result<(), BenchError> {
    let mut client =
        IpcClient::attach(socket, "victim", "fast").map_err(|e| ipc_err("crash attach", e))?;
    let stream = client
        .create_stream("doomed")
        .map_err(|e| ipc_err("crash stream", e))?;
    let mut held = Vec::new();
    for i in 0..CRASH_SLOTS {
        let mut guard = client.lend(8).map_err(|e| ipc_err("crash lend", e))?;
        guard.copy_from_slice(&(i as u64).to_le_bytes());
        if i % 2 == 0 {
            if let Err(guard) = client.emit(stream, guard) {
                held.push(guard);
            }
        } else {
            held.push(guard);
        }
    }
    println!("victim ready");
    std::io::stdout().flush().map_err(BenchError::Io)?;
    std::process::abort();
}

/// Spawns this binary in a helper role and waits for its ready line.
fn respawn(role: &str, socket: &Path, ready: &str) -> Result<Child, BenchError> {
    let exe = std::env::current_exe().map_err(BenchError::Io)?;
    let mut child = Command::new(exe)
        .arg(role)
        .arg(socket)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(BenchError::Io)?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| BenchError::Other("helper stdout missing".into()))?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(BenchError::Io)?;
    if !line.starts_with(ready) {
        let _ = child.kill();
        return Err(BenchError::Other(format!(
            "helper {role} said {line:?}, expected {ready:?}"
        )));
    }
    Ok(child)
}

fn run() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let messages = iters(5_000);
    let socket: PathBuf =
        std::env::temp_dir().join(format!("insane-ipc-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);

    println!("process split: {messages} round trips per deployment");

    // Phase 1: in-process baseline.
    let in_process = ipc_bench::run_in_process(messages)?;
    println!(
        "in-process round trip: p50 {:.1}us, p99 {:.1}us",
        in_process.median() as f64 / 1e3,
        in_process.p99() as f64 / 1e3,
    );

    // Phase 2: the same ping-pong across a real process boundary.
    let mut daemon = respawn("--serve", &socket, "insaned listening on")?;
    let (cross_process, attach_ns) = ipc_bench::run_cross_process(&socket, messages)?;
    println!(
        "cross-process round trip: p50 {:.1}us, p99 {:.1}us (attach {:.1}us)",
        cross_process.median() as f64 / 1e3,
        cross_process.p99() as f64 / 1e3,
        attach_ns as f64 / 1e3,
    );

    // Phase 3: kill a client, watch the daemon clean up.
    let socket_for_crash = socket.clone();
    let (reclaim_ns, reclaimed_slots, leaked_slots) =
        ipc_bench::run_crash_reclaim(&socket, &mut || {
            let mut victim = respawn("--crash", &socket_for_crash, "victim ready")?;
            victim.wait().map_err(BenchError::Io)?;
            Ok(())
        })?;
    println!(
        "crash reclaim: {reclaimed_slots} slots back in {:.1}us, {leaked_slots} leaked",
        reclaim_ns as f64 / 1e3,
    );

    // Shut the daemon down before judging, so a gate failure never
    // leaves an orphan process behind.
    let mut closer =
        IpcClient::attach(&socket, "closer", "fast").map_err(|e| ipc_err("closer", e))?;
    closer
        .request_shutdown()
        .map_err(|e| ipc_err("shutdown", e))?;
    closer.detach().map_err(|e| ipc_err("detach", e))?;
    let status = daemon.wait().map_err(BenchError::Io)?;
    if !status.success() {
        return Err(BenchError::Other(format!("daemon exited with {status:?}")));
    }

    let report = ipc_bench::IpcReport {
        messages,
        in_process,
        cross_process,
        attach_ns,
        reclaim_ns,
        reclaimed_slots,
        leaked_slots,
    };
    let ratio = report.ratio_x1000();
    println!(
        "process-split overhead: {:.3}x at p99 (bound {:.3}x)",
        ratio as f64 / 1e3,
        BOUND_X1000 as f64 / 1e3,
    );

    // The exporter re-validates every gate (overhead, reclaim ran, no
    // leaks) against the schema before writing.
    write_ipc(&[IpcEntry {
        system: "INSANE process split".to_string(),
        testbed: profile.name.to_string(),
        messages: report.messages,
        in_process_p50_ns: report.in_process.median(),
        in_process_p99_ns: report.in_process.p99(),
        cross_process_p50_ns: report.cross_process.median(),
        cross_process_p99_ns: report.cross_process.p99(),
        ratio_x1000: ratio,
        bound_x1000: BOUND_X1000,
        attach_ns: report.attach_ns,
        reclaim_ns: report.reclaim_ns,
        reclaimed_slots: report.reclaimed_slots,
        leaked_slots: report.leaked_slots,
    }])?;
    Ok(())
}
