//! Mixed-criticality timing-isolation runner: measures the critical
//! flow's one-way latency over the 802.1Qbv time-aware shard at a solo
//! baseline and at each requested bulk load point, with the seeded
//! fault injector live, and exports the schema-validated
//! `BENCH_isolation.json`.  Fails unless every delivered critical
//! message landed inside its latency budget and the contended p99.9
//! stayed within the 2x tail bound.
//!
//! Bulk load points (emits per critical round) come from the command
//! line, default `8 32`:
//!
//! ```bash
//! cargo run --release -p insane-bench --bin mixed_criticality -- 8 32
//! ```
//!
//! Iteration counts honor `INSANE_BENCH_FACTOR` (CI runs 0.3).

use insane_bench::export::write_isolation;
use insane_bench::mixed_criticality::{self, BUDGET, PAYLOAD, TAIL_BOUND_X1000};
use insane_bench::{iters, BenchError};
use insane_fabric::TestbedProfile;

fn main() {
    if let Err(e) = run() {
        eprintln!("mixed-criticality bench failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let bursts = load_points()?;
    let profile = TestbedProfile::local();
    let rounds = iters(300);
    // Warmup also floods, so bulk backlog and the dry token bucket are
    // already in place when measurement starts.
    let warmup = 20;

    println!(
        "mixed criticality: {rounds} critical one-ways x {PAYLOAD} B over the \
         time-aware shard, bulk load points {bursts:?}, budget {:.1}ms",
        BUDGET.as_secs_f64() * 1e3,
    );
    let report = mixed_criticality::run(&profile, rounds, warmup, &bursts)?;

    let solo = report.solo_p999_ns();
    for p in &report.points {
        println!(
            "bulk {:>3}/round: p50 {:.2}us p99 {:.2}us p99.9 {:.2}us \
             (ratio {:.3}x of solo, bound {:.3}x) | {} over budget, {} lost, \
             {} deferrals, {} bulk rejections, {} drops / {} reorders injected",
            p.bulk_burst,
            p.series.median() as f64 / 1e3,
            p.series.p99() as f64 / 1e3,
            p.series.p999() as f64 / 1e3,
            (p.series.p999().saturating_mul(1_000) / solo.max(1)) as f64 / 1e3,
            TAIL_BOUND_X1000 as f64 / 1e3,
            p.budget_violations,
            p.lost,
            p.gate_deferrals,
            p.bulk_rejections,
            p.faults.injected_drops,
            p.faults.reorders,
        );
    }

    // The export validator enforces the budget and tail gates; a
    // violated bound fails here, before CI.
    let entries = report.to_entries("INSANE tas", profile.name);
    write_isolation(&entries)?;
    Ok(())
}

/// Bulk load points from `argv` (default `8 32`); the solo baseline is
/// always run in addition.
fn load_points() -> Result<Vec<usize>, BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Ok(vec![8, 32]);
    }
    args.iter()
        .map(|a| {
            a.parse::<usize>()
                .map_err(|_| BenchError::Other(format!("invalid bulk load point {a:?}")))
        })
        .collect()
}
