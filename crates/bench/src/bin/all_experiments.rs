//! Runs the full experiment suite (every table and figure in order).

use insane_bench::BenchError;

fn main() {
    if let Err(e) = suite() {
        eprintln!("experiment suite failed: {e}");
        std::process::exit(1);
    }
}

fn suite() -> Result<(), BenchError> {
    use insane_bench::experiments as e;
    e::table1();
    e::table2();
    e::table3()?;
    e::fig5()?;
    e::fig6()?;
    e::fig7()?;
    e::fig8a()?;
    e::fig8b()?;
    e::fig9a()?;
    e::fig9b()?;
    e::table4();
    e::fig11()?;
    e::extra_xdp_rdma()?;
    e::ablations()
}
