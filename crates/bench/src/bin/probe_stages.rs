//! Developer probe: prints raw pipeline-stage timings per system.
fn main() {
    use insane_bench::throughput::*;
    use insane_fabric::TestbedProfile;
    let p = TestbedProfile::local();
    for payload in [64usize, 1024, 8192] {
        for sys in [
            TputSystem::RawDpdk,
            TputSystem::InsaneFast,
            TputSystem::KernelUdp,
            TputSystem::InsaneSlow,
            TputSystem::Catnip,
            TputSystem::Catnap,
        ] {
            let s = match stages(sys, &p, payload, 2000) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{} failed: {e}", sys.label());
                    std::process::exit(1);
                }
            };
            println!(
                "{:12} {:5}B tx={:6}ns rx={:6}ns wire={:4}ns -> {:.2} Gbps",
                sys.label(),
                payload,
                s.tx_ns,
                s.rx_ns,
                s.wire_ns,
                s.goodput_gbps(payload)
            );
        }
        println!();
    }
}
