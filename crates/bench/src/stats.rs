//! Sample statistics for the experiment reports.

/// A series of measurements (nanoseconds, unless stated otherwise).
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<u64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from raw samples.
    pub fn from_samples(samples: Vec<u64>) -> Self {
        Self { samples }
    }

    /// Adds one sample.
    pub fn push(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted(&self) -> Vec<u64> {
        let mut v = self.samples.clone();
        v.sort_unstable();
        v
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// q-quantile (0.0–1.0) by nearest-rank (0 for an empty series).
    pub fn quantile(&self, q: f64) -> u64 {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }

    /// Median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// First quartile.
    pub fn p25(&self) -> u64 {
        self.quantile(0.25)
    }

    /// Third quartile.
    pub fn p75(&self) -> u64 {
        self.quantile(0.75)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Minimum (0 for an empty series).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum (0 for an empty series).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Converts nanoseconds to microseconds for display.
pub fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Goodput in Gbit/s for `n` messages of `payload` bytes over `ns`.
pub fn gbps(payload: usize, n: usize, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (payload as f64 * n as f64 * 8.0) / ns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let s = Series::from_samples((1..=100).collect());
        // Nearest-rank on an even count rounds the half-rank up.
        assert_eq!(s.median(), 51);
        assert_eq!(s.p25(), 26);
        assert_eq!(s.p75(), 75);
        assert_eq!(s.p90(), 90);
        assert_eq!(s.p99(), 99);
        assert_eq!(s.p999(), 100);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = Series::new();
        assert_eq!(s.median(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn gbps_math() {
        // 1000 messages of 1250 bytes in 100_000 ns = 1250*1000*8 bits
        // per 100 µs = 100 Gbps.
        assert!((gbps(1250, 1000, 100_000) - 100.0).abs() < 1e-9);
        assert_eq!(gbps(1, 1, 0), 0.0);
    }
}
