//! Shard scale-out benchmark: aggregate multi-stream throughput of the
//! sharded polling engine at 1, 2, 4 and 8 shards per datapath.
//!
//! The workload is Fig. 8's sustained one-way flood generalized to many
//! streams: [`STREAMS`] producer streams on host A, one sink per stream
//! on host B, all mapped to the DPDK datapath.  With
//! `shards_per_datapath = S`, the runtime pins each stream to one of `S`
//! shards and each shard runs its own polling thread on its own core.
//!
//! This host exposes one CPU, so the harness applies the same pipeline
//! model as [`crate::throughput`]: each shard's polling work is driven
//! inline and timed separately, and the sustained rate is bounded by the
//! busiest single shard thread (sender or receiver side) or the wire —
//! `messages / max(max_s tx_ns[s], max_s rx_ns[s], wire_ns)`.
//! Application work (producing payloads, consuming messages) runs on the
//! applications' own cores in the deployed system and is driven untimed.
//!
//! Every consumed message carries its stream id and a per-stream
//! sequence number; the harness fails if any stream observes reordering,
//! so the reported speed-up never comes at the cost of the middleware's
//! per-stream FIFO contract.

use std::time::Instant;

use insane_core::{ChannelId, ConsumeMode, InsaneError, QosPolicy, Sink, Source, Technology};
use insane_fabric::TestbedProfile;

use crate::export::ThroughputEntry;
use crate::setup::{throughput_config, throughput_profile, InsanePair};
use crate::stats::gbps;
use crate::throughput::wire_ns_per_msg;
use crate::BenchError;

/// Producer streams in the workload (enough that FNV assignment spreads
/// them over every shard count measured).
pub const STREAMS: usize = 8;

/// Payload bytes per message: stream id + sequence number plus padding,
/// the paper's small-message regime where per-message CPU dominates.
pub const PAYLOAD: usize = 64;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Shards per datapath for this run.
    pub shards: usize,
    /// Messages delivered (and order-checked) end to end.
    pub delivered: usize,
    /// Per-shard sender-side polling time, nanoseconds.
    pub tx_shard_ns: Vec<u64>,
    /// Per-shard receiver-side polling time, nanoseconds.
    pub rx_shard_ns: Vec<u64>,
    /// Total wire serialization time, nanoseconds.
    pub wire_ns: u64,
}

impl ShardRun {
    /// The pipeline bottleneck: the busiest shard thread or the wire.
    pub fn bottleneck_ns(&self) -> u64 {
        let tx = self.tx_shard_ns.iter().copied().max().unwrap_or(0);
        let rx = self.rx_shard_ns.iter().copied().max().unwrap_or(0);
        tx.max(rx).max(self.wire_ns).max(1)
    }

    /// Aggregate delivered messages per second under the pipeline model.
    pub fn msgs_per_sec(&self) -> f64 {
        self.delivered as f64 * 1e9 / self.bottleneck_ns() as f64
    }

    /// Aggregate goodput in Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        gbps(PAYLOAD, self.delivered, self.bottleneck_ns())
    }

    /// BENCH throughput-schema entry for this run.
    pub fn entry(&self, testbed: &str) -> ThroughputEntry {
        ThroughputEntry {
            system: format!("INSANE fast x{} shards", self.shards),
            testbed: testbed.to_owned(),
            payload_bytes: PAYLOAD,
            messages: self.delivered,
            goodput_gbps: self.goodput_gbps(),
        }
    }
}

/// Per-stream ordering state checked on every consumed message.
struct OrderCheck {
    last_seq: Vec<Option<u32>>,
}

impl OrderCheck {
    fn new() -> Self {
        OrderCheck {
            last_seq: vec![None; STREAMS],
        }
    }

    fn observe(&mut self, payload: &[u8]) -> Result<(), BenchError> {
        if payload.len() < 8 {
            return Err(BenchError::Other(format!(
                "shard bench: short payload of {} bytes",
                payload.len()
            )));
        }
        let mut word = [0u8; 4];
        word.copy_from_slice(&payload[0..4]);
        let stream = u32::from_le_bytes(word) as usize;
        word.copy_from_slice(&payload[4..8]);
        let seq = u32::from_le_bytes(word);
        let slot = self
            .last_seq
            .get_mut(stream)
            .ok_or_else(|| BenchError::Other(format!("shard bench: unknown stream id {stream}")))?;
        if let Some(last) = *slot {
            if seq <= last {
                return Err(BenchError::Other(format!(
                    "per-stream ordering violated: stream {stream} saw seq {seq} after {last}"
                )));
            }
        }
        *slot = Some(seq);
        Ok(())
    }
}

fn emit_next(source: &Source, stream: usize, seq: &mut u32) -> Result<bool, BenchError> {
    match source.get_buffer(PAYLOAD) {
        Ok(mut buf) => {
            buf[0..4].copy_from_slice(&(stream as u32).to_le_bytes());
            buf[4..8].copy_from_slice(&seq.to_le_bytes());
            buf[8..].fill(0x5A);
            match source.emit(buf) {
                Ok(_) => {
                    *seq = seq.wrapping_add(1);
                    Ok(true)
                }
                Err(InsaneError::Backpressure) => Ok(false),
                Err(e) => Err(e.into()),
            }
        }
        Err(InsaneError::Memory(_)) => Ok(false),
        Err(e) => Err(e.into()),
    }
}

fn consume_all(
    sinks: &[Sink],
    order: &mut OrderCheck,
    delivered: &mut usize,
) -> Result<(), BenchError> {
    for sink in sinks {
        loop {
            match sink.consume(ConsumeMode::NonBlocking) {
                Ok(msg) => {
                    order.observe(&msg)?;
                    *delivered += 1;
                }
                Err(InsaneError::WouldBlock) => break,
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

/// Runs the multi-stream flood with `shards` shards per datapath until
/// `target` messages are delivered and order-checked.
///
/// # Errors
///
/// Fails on middleware errors, per-stream reordering, or a stalled
/// pipeline (delivery stops making progress).
pub fn run(profile: &TestbedProfile, shards: usize, target: usize) -> Result<ShardRun, BenchError> {
    run_with(profile, shards, target, false)
}

/// As [`run`], optionally scaling the slot pools with the shard count
/// (`per_shard_pool`): each shard then works against the same pool
/// capacity a 1-shard runtime has in total, so high shard counts are
/// not throttled by pool contention instead of CPU — the regime the
/// `--per-shard-pool` flag of the `shard_bench` binary measures.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(
    profile: &TestbedProfile,
    shards: usize,
    target: usize,
    per_shard_pool: bool,
) -> Result<ShardRun, BenchError> {
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let pair = InsanePair::with_config(throughput_profile(profile.clone()), &techs, |c| {
        let mut c = throughput_config(c).with_shards_per_datapath(shards);
        if per_shard_pool {
            c.small_slots = c.small_slots.saturating_mul(shards);
            c.large_slots = c.large_slots.saturating_mul(shards);
            c.sink_queue_depth = c.sink_queue_depth.saturating_mul(shards);
        }
        c
    })?;

    let stream_b = pair.session_b.create_stream(QosPolicy::fast())?;
    let sinks = (0..STREAMS)
        .map(|i| stream_b.create_sink(ChannelId(i as u32)))
        .collect::<Result<Vec<Sink>, _>>()?;
    pair.settle();
    let sources = (0..STREAMS)
        .map(|i| {
            let stream = pair.session_a.create_stream(QosPolicy::fast())?;
            stream.create_source(ChannelId(i as u32))
        })
        .collect::<Result<Vec<Source>, _>>()?;
    pair.settle();

    let nshards = pair.rt_a.shards_per_datapath();
    if nshards != shards {
        return Err(BenchError::Other(format!(
            "runtime clamped shards to {nshards}, wanted {shards}"
        )));
    }

    let mut seqs = [0u32; STREAMS];
    let mut order = OrderCheck::new();
    let mut delivered = 0usize;
    let mut tx_shard_ns = vec![0u64; shards];
    let mut rx_shard_ns = vec![0u64; shards];

    let mut stalled = 0u32;
    while delivered < target {
        // Application stage (untimed): keep every stream's TX queue fed.
        for (i, source) in sources.iter().enumerate() {
            for _ in 0..8 {
                if !emit_next(source, i, &mut seqs[i])? {
                    break;
                }
            }
        }
        // Sender shard threads: one timed inline drive per shard.
        for (s, slot) in tx_shard_ns.iter_mut().enumerate() {
            let t0 = Instant::now();
            pair.rt_a.poll_technology_shard(Technology::Dpdk, s);
            *slot += t0.elapsed().as_nanos() as u64;
        }
        // Receiver shard threads, likewise.
        for (s, slot) in rx_shard_ns.iter_mut().enumerate() {
            let t0 = Instant::now();
            pair.rt_b.poll_technology_shard(Technology::Dpdk, s);
            *slot += t0.elapsed().as_nanos() as u64;
        }
        // Control path (kernel UDP) runs on its own threads; untimed.
        pair.rt_a.poll_technology(Technology::KernelUdp);
        pair.rt_b.poll_technology(Technology::KernelUdp);
        // Sink applications (untimed): drain and order-check.
        let before = delivered;
        consume_all(&sinks, &mut order, &mut delivered)?;
        stalled = if delivered == before { stalled + 1 } else { 0 };
        if stalled > 1_000_000 {
            return Err(BenchError::Other(format!(
                "shard bench stalled at {delivered}/{target} delivered ({shards} shards)"
            )));
        }
    }

    Ok(ShardRun {
        shards,
        delivered,
        tx_shard_ns,
        rx_shard_ns,
        wire_ns: wire_ns_per_msg(profile, PAYLOAD).saturating_mul(delivered as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness delivers, order-checks and produces a valid BENCH
    /// entry at a tiny message count (the full comparison runs in the
    /// `shard_bench` binary).
    #[test]
    fn harness_delivers_and_order_checks() {
        let profile = TestbedProfile::local();
        let run = run(&profile, 2, 256).unwrap();
        assert_eq!(run.shards, 2);
        assert!(run.delivered >= 256);
        assert_eq!(run.tx_shard_ns.len(), 2);
        assert!(run.bottleneck_ns() > 0);
        assert!(run.msgs_per_sec() > 0.0);
        let entry = run.entry(profile.name);
        assert_eq!(entry.payload_bytes, PAYLOAD);
        assert!(entry.goodput_gbps > 0.0);
    }

    #[test]
    fn reordering_is_detected() {
        let mut order = OrderCheck::new();
        let mut msg = [0u8; 8];
        msg[4] = 5;
        order.observe(&msg).unwrap();
        msg[4] = 3;
        assert!(order.observe(&msg).is_err());
    }
}
