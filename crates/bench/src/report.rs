//! Table rendering and CSV output for the experiments.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple fixed-width table printer.
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        println!("\n== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Writes the table as `target/experiments/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = experiments_dir();
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let Ok(mut file) = fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(file, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(file, "{}", row.join(","));
        }
        println!("[csv] {}", path.display());
    }
}

/// Directory experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate target/; fall back to ./target.
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("experiments")
}

/// Formats a microsecond value with two decimals.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

/// Formats a Gbps value with two decimals.
pub fn fmt_gbps(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_pads() {
        let mut t = Table::new("test", &["col-a", "b"]);
        t.row(vec!["1".into(), "long-cell".into()]);
        t.row(vec!["22".into(), "x".into()]);
        // Just exercise the printer (visually verified in bench output).
        t.print();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_us(12_580), "12.58");
        assert_eq!(fmt_gbps(86.93), "86.93");
    }
}
