//! Hot-path control-state read experiment (DESIGN.md §12).
//!
//! The polling shards read routing tables, QP lists, and tunables on
//! every iteration; writers touch them on control-plane events only.
//! This experiment measures what the `SnapshotCell` conversion bought
//! over the `RwLock` it replaced, in three phases:
//!
//! * **uncontended** — mean cost of one control-state read with no
//!   writer anywhere: `RwLock::read()` (an atomic RMW on a shared line
//!   even when free) vs `SnapshotCell::refresh` (one atomic load when
//!   the snapshot is unchanged);
//! * **contended** — per-read latency p99 while a writer thread
//!   republishes the table in a loop.  On a single-CPU host the locked
//!   reader occasionally blocks for a full scheduler quantum when the
//!   preempted writer holds the lock; the snapshot reader never blocks
//!   on the writer at all, so the p99s separate by orders of magnitude;
//! * **reload-under-load** — a live INSANE pair streams sequenced
//!   messages while [`Tunables`] are republished mid-flight; every
//!   message must arrive, in order.  Hot reconfiguration must be
//!   invisible to the datapath.
//!
//! Exported as the schema-validated `BENCH_hotpath.json`; the validator
//! re-checks all three gates on every consumer (`insanectl
//! check-bench`, CI).

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use insane_core::{ConsumeMode, InsaneError, QosPolicy, SnapshotCell, Technology, Tunables};
use insane_fabric::TestbedProfile;

use crate::setup::InsanePair;
use crate::stats::Series;
use crate::BenchError;

/// Sequenced-payload size of the reload-under-load phase (one u64).
pub const SEQ_PAYLOAD: usize = 8;
/// Uncontended gate in thousandths: the snapshot read may cost at most
/// 1.100x the locked read it replaced (it is expected to be *cheaper*;
/// the slack absorbs timer noise on shared CI runners).
pub const UNCONTENDED_BOUND_X1000: u64 = 1_100;
/// Contended gate in thousandths: with a live writer, the snapshot
/// reader's p99 must not exceed 1.100x the locked reader's p99.
pub const CONTENDED_BOUND_X1000: u64 = 1_100;

/// The routing-table stand-in both read paths traverse: large enough
/// that a clone-and-republish is real work, small enough to stay
/// cache-resident like the runtime's actual tables.
const TABLE_ENTRIES: usize = 64;

/// Repetitions of each contended measurement; the run with the lowest
/// p99 is kept.  At CI iteration counts both designs' tails land within
/// a timer tick of each other, so a single run is hostage to one
/// unlucky scheduler quantum; best-of-N compares each design's
/// reproducible tail instead.
const CONTENDED_RUNS: usize = 3;

fn table(seed: u64) -> Vec<u64> {
    (0..TABLE_ENTRIES as u64).map(|i| i ^ seed).collect()
}

fn read_entry(entries: &[u64], i: usize) -> u64 {
    entries.get(i % TABLE_ENTRIES).copied().unwrap_or(0)
}

/// Outcome of one hot-path run.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Timed reads per uncontended measurement.
    pub samples: usize,
    /// Mean uncontended `RwLock` read, thousandths of a nanosecond.
    pub locked_read_ns_x1000: u64,
    /// Mean uncontended snapshot read, thousandths of a nanosecond.
    pub snapshot_read_ns_x1000: u64,
    /// Per-read latencies under a republishing writer, locked reader.
    pub locked_contended: Series,
    /// Per-read latencies under a republishing writer, snapshot reader.
    pub snapshot_contended: Series,
    /// Live tunables reloads performed while traffic flowed.
    pub reloads: u64,
    /// Messages emitted in the reload phase.
    pub sent: u64,
    /// Messages that never arrived (must be 0).
    pub dropped: u64,
    /// Messages that arrived out of order (must be 0).
    pub reordered: u64,
}

impl HotpathReport {
    /// snapshot/locked uncontended mean ratio in thousandths.
    pub fn uncontended_ratio_x1000(&self) -> u64 {
        self.snapshot_read_ns_x1000
            .saturating_mul(1_000)
            .checked_div(self.locked_read_ns_x1000)
            .unwrap_or(u64::MAX)
    }

    /// snapshot/locked contended p99 ratio in thousandths.
    pub fn contended_ratio_x1000(&self) -> u64 {
        self.snapshot_contended
            .p99()
            .saturating_mul(1_000)
            .checked_div(self.locked_contended.p99())
            .unwrap_or(u64::MAX)
    }
}

/// Mean per-read cost of the locked design with no writer, in
/// thousandths of a nanosecond.
fn uncontended_locked(samples: usize) -> u64 {
    let lock = RwLock::new(table(0));
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..samples {
        let guard = lock.read().unwrap_or_else(|e| e.into_inner());
        acc = acc.wrapping_add(read_entry(&guard, i));
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    black_box(acc);
    per_read_x1000(elapsed, samples)
}

/// Mean per-read cost of the snapshot design with no writer, in
/// thousandths of a nanosecond.  The cached snapshot is refreshed every
/// read, exactly like a polling shard's per-iteration prologue.
fn uncontended_snapshot(samples: usize) -> u64 {
    let cell = SnapshotCell::new(table(0));
    let mut cached = cell.load();
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..samples {
        cell.refresh(&mut cached);
        acc = acc.wrapping_add(read_entry(&cached, i));
    }
    let elapsed = t0.elapsed().as_nanos() as u64;
    black_box(acc);
    per_read_x1000(elapsed, samples)
}

fn per_read_x1000(elapsed_ns: u64, samples: usize) -> u64 {
    (elapsed_ns.saturating_mul(1_000) / samples.max(1) as u64).max(1)
}

/// Per-read latencies of the locked design while a writer thread
/// clones, mutates, and writes the table back under the write lock.
fn contended_locked(samples: usize) -> Series {
    let lock = Arc::new(RwLock::new(table(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seed = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let next = table(seed);
                seed = seed.wrapping_add(1);
                let mut guard = lock.write().unwrap_or_else(|e| e.into_inner());
                *guard = next;
            }
        })
    };
    let mut series = Series::new();
    let mut acc = 0u64;
    for i in 0..samples {
        let t0 = Instant::now();
        let guard = lock.read().unwrap_or_else(|e| e.into_inner());
        acc = acc.wrapping_add(read_entry(&guard, i));
        drop(guard);
        series.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    let _ = writer.join();
    black_box(acc);
    series
}

/// Per-read latencies of the snapshot design while a writer thread
/// builds and publishes fresh tables.
fn contended_snapshot(samples: usize) -> Series {
    let cell = Arc::new(SnapshotCell::new(table(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cell = Arc::clone(&cell);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seed = 1u64;
            while !stop.load(Ordering::Relaxed) {
                cell.publish(Arc::new(table(seed)));
                seed = seed.wrapping_add(1);
            }
        })
    };
    let mut series = Series::new();
    let mut cached = cell.load();
    let mut acc = 0u64;
    for i in 0..samples {
        let t0 = Instant::now();
        cell.refresh(&mut cached);
        acc = acc.wrapping_add(read_entry(&cached, i));
        series.push(t0.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    let _ = writer.join();
    black_box(acc);
    series
}

/// Keeps the series with the lowest p99 out of `runs` measurements.
fn best_of(runs: usize, mut measure: impl FnMut() -> Series) -> Series {
    let mut best = measure();
    for _ in 1..runs {
        let next = measure();
        if next.p99() < best.p99() {
            best = next;
        }
    }
    best
}

/// Streams `messages` sequenced one-way messages across a live pair
/// while republishing [`Tunables`] mid-flight; returns
/// `(reloads, sent, dropped, reordered)`.
fn reload_under_load(
    profile: &TestbedProfile,
    messages: u64,
) -> Result<(u64, u64, u64, u64), BenchError> {
    let pair = InsanePair::new(profile.clone(), &[Technology::KernelUdp, Technology::Dpdk])?;
    let (source, sinks) = pair.one_way(QosPolicy::fast(), 1)?;
    let sink = sinks
        .into_iter()
        .next()
        .ok_or_else(|| BenchError::Other("one_way returned no sink".into()))?;
    let hot = Technology::Dpdk;

    // Alternate between a narrow and a wide burst window so every
    // reload genuinely moves the adaptive controller's clamps.
    let tunables = [Tunables::for_burst(8), Tunables::for_burst(64)];
    let reload_every = (messages / 8).max(1);

    let mut reloads = 0u64;
    let mut received = 0u64;
    let mut reordered = 0u64;
    let mut next_seq = 0u64;
    let consume =
        |sink: &insane_core::Sink, received: &mut u64, reordered: &mut u64, next_seq: &mut u64| {
            while let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
                *received += 1;
                if msg.len() >= SEQ_PAYLOAD {
                    let mut raw = [0u8; SEQ_PAYLOAD];
                    raw.copy_from_slice(&msg[..SEQ_PAYLOAD]);
                    let seq = u64::from_le_bytes(raw);
                    if seq != *next_seq {
                        *reordered += 1;
                    }
                    *next_seq = seq.wrapping_add(1);
                }
            }
        };

    for seq in 0..messages {
        if seq % reload_every == 0 {
            let t = tunables
                .get((reloads % 2) as usize)
                .cloned()
                .unwrap_or_default();
            pair.rt_a.reload_tunables(t.clone())?;
            pair.rt_b.reload_tunables(t)?;
            reloads += 1;
        }
        // Emit with bounded retry: backpressure just means the pair
        // needs polling, which is the caller's job in Manual mode.
        let mut attempts = 0u32;
        loop {
            let outcome = source.get_buffer(SEQ_PAYLOAD).and_then(|mut buf| {
                buf.copy_from_slice(&seq.to_le_bytes());
                source.emit(buf).map(|_| ())
            });
            match outcome {
                Ok(()) => break,
                Err(InsaneError::Backpressure) | Err(InsaneError::Memory(_)) => {
                    attempts += 1;
                    if attempts > 100_000 {
                        return Err(BenchError::Other(
                            "reload-under-load stalled: emit retries exhausted".into(),
                        ));
                    }
                    pair.rt_a.poll_transmit(hot);
                    pair.rt_b.poll_technology(hot);
                    consume(&sink, &mut received, &mut reordered, &mut next_seq);
                }
                Err(e) => return Err(e.into()),
            }
        }
        pair.rt_a.poll_transmit(hot);
        pair.rt_b.poll_technology(hot);
        consume(&sink, &mut received, &mut reordered, &mut next_seq);
    }

    // Drain the tail.
    let mut idle = 0u32;
    while received < messages && idle < 100_000 {
        pair.rt_a.poll_transmit(hot);
        pair.rt_b.poll_technology(hot);
        let before = received;
        consume(&sink, &mut received, &mut reordered, &mut next_seq);
        idle = if received == before { idle + 1 } else { 0 };
    }

    Ok((reloads, messages, messages - received, reordered))
}

/// Runs all three phases.
///
/// # Errors
///
/// Propagates middleware failures from the reload-under-load phase and
/// stalls (a message that never arrives shows up as `dropped`, not an
/// error — the export gate rejects it with a better message).
pub fn run(
    profile: &TestbedProfile,
    samples: usize,
    messages: u64,
) -> Result<HotpathReport, BenchError> {
    // Warm both paths once so neither measurement pays first-touch costs.
    black_box(uncontended_locked(samples / 10 + 1));
    black_box(uncontended_snapshot(samples / 10 + 1));

    let locked_read_ns_x1000 = uncontended_locked(samples);
    let snapshot_read_ns_x1000 = uncontended_snapshot(samples);
    let locked_contended = best_of(CONTENDED_RUNS, || contended_locked(samples));
    let snapshot_contended = best_of(CONTENDED_RUNS, || contended_snapshot(samples));
    let (reloads, sent, dropped, reordered) = reload_under_load(profile, messages)?;

    Ok(HotpathReport {
        samples,
        locked_read_ns_x1000,
        snapshot_read_ns_x1000,
        locked_contended,
        snapshot_contended,
        reloads,
        sent,
        dropped,
        reordered,
    })
}
