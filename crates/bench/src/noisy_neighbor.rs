//! Noisy-neighbor isolation experiment (DESIGN.md §10).
//!
//! Two tenants share one INSANE runtime pair: a well-behaved *victim*
//! running a time-sensitive ping-pong, and a *bulk* tenant that
//! saturates its admission rate limit with best-effort bursts every
//! round.  The experiment measures the victim's RTT p99 twice — solo
//! (tenants configured, no bulk traffic) and contended — and asserts
//! the isolation contract: cross-tenant DRR scheduling, slot quotas,
//! and token-bucket admission must keep the contended p99 within a
//! bounded factor of the solo baseline, while the bulk tenant's
//! overflow is refused with *typed* errors (never a panic, pool
//! exhaustion, or victim starvation).
//!
//! Exported as the schema-validated `BENCH_noisy_neighbor.json`; the
//! validator re-checks the bound and the rejection counts on every
//! consumer (`insanectl check-bench`, CI).

use std::time::Instant;

use insane_core::{
    ChannelId, ConsumeMode, InsaneError, MemoryError, QosPolicy, Session, SessionConfig, Sink,
    Source, Technology, TenantId, TenantQuota, TenantRate, TenantSpec,
};
use insane_fabric::TestbedProfile;

use crate::setup::{InsanePair, PING_CHANNEL, PONG_CHANNEL};
use crate::stats::Series;
use crate::BenchError;

/// The well-behaved tenant under measurement.
pub const VICTIM: TenantId = 1;
/// The saturating tenant.
pub const BULK: TenantId = 2;
/// Channel carrying the bulk tenant's one-way flood.
pub const BULK_CHANNEL: ChannelId = ChannelId(200);
/// Payload size of every message in the experiment.
pub const PAYLOAD: usize = 64;
/// Bulk-tenant emit attempts per victim round trip.
pub const BULK_BURST: usize = 16;
/// Isolation bound in thousandths: contended p99 must stay within
/// 2.000x of the solo p99 (the ISSUE acceptance criterion).
pub const ISOLATION_BOUND_X1000: u64 = 2_000;

/// Sustained bulk admission rate (messages/sec). Low enough that a
/// bursting tenant exhausts its bucket within a few rounds of the
/// bench's millisecond-scale wall clock.
const BULK_RATE_PER_SEC: u64 = 2_000;
/// Bulk bucket capacity after idle.
const BULK_BURST_CAP: u64 = 32;

/// Outcome of one noisy-neighbor run.
#[derive(Debug, Clone)]
pub struct NoisyNeighborReport {
    /// Victim RTT samples with no bulk traffic, nanoseconds.
    pub solo: Series,
    /// Victim RTT samples under bulk saturation, nanoseconds.
    pub contended: Series,
    /// Typed refusals observed by the bulk tenant (admission, shed,
    /// backpressure, or slot-quota).
    pub bulk_rejections: u64,
    /// Typed refusals observed by the victim (must be zero).
    pub victim_rejections: u64,
}

impl NoisyNeighborReport {
    /// Contended-over-solo p99 ratio in thousandths (fixed point).
    pub fn isolation_ratio_x1000(&self) -> u64 {
        let solo = self.solo.p99().max(1);
        self.contended.p99().saturating_mul(1_000) / solo
    }
}

/// The shared tenant configuration of both phases: the victim gets a
/// reservation, a 4x DRR weight, and no rate limit; the bulk tenant
/// gets a small slot quota and a token bucket it is guaranteed to
/// overrun.
fn tenant_specs() -> [TenantSpec; 2] {
    [
        TenantSpec::new(VICTIM, TenantQuota::new(4, 16)).with_weight(4),
        TenantSpec::new(BULK, TenantQuota::new(4, 16))
            .with_rate(TenantRate::new(BULK_RATE_PER_SEC, BULK_BURST_CAP))
            .with_weight(1),
    ]
}

fn build_pair(profile: &TestbedProfile) -> Result<InsanePair, BenchError> {
    InsanePair::with_config(
        profile.clone(),
        &[Technology::KernelUdp, Technology::Dpdk],
        |mut c| {
            for spec in tenant_specs() {
                c = c.with_tenant(spec);
            }
            c
        },
    )
}

/// The victim's ping-pong plumbing under its own tenant sessions
/// (sources/sinks on both runtimes of the pair).
struct VictimPlumbing {
    // Sessions own their streams; dropping them tears the plumbing down.
    _session_a: Session,
    _session_b: Session,
    ping_source: Source,
    ping_sink: Sink,
    pong_source: Source,
    pong_sink: Sink,
}

fn victim_plumbing(pair: &InsanePair) -> Result<VictimPlumbing, BenchError> {
    let session_a = Session::connect_with(&pair.rt_a, SessionConfig::for_tenant(VICTIM))?;
    let session_b = Session::connect_with(&pair.rt_b, SessionConfig::for_tenant(VICTIM))?;
    let stream_a = session_a.create_stream(QosPolicy::fast())?;
    let stream_b = session_b.create_stream(QosPolicy::fast())?;
    let ping_sink = stream_b.create_sink(PING_CHANNEL)?;
    let pong_sink = stream_a.create_sink(PONG_CHANNEL)?;
    pair.settle();
    let ping_source = stream_a.create_source(PING_CHANNEL)?;
    let pong_source = stream_b.create_source(PONG_CHANNEL)?;
    pair.settle();
    Ok(VictimPlumbing {
        _session_a: session_a,
        _session_b: session_b,
        ping_source,
        ping_sink,
        pong_source,
        pong_sink,
    })
}

/// Is this error one of the typed per-tenant refusals the isolation
/// machinery is allowed to answer with?
fn is_typed_rejection(e: &InsaneError) -> bool {
    matches!(
        e,
        InsaneError::AdmissionRejected { .. }
            | InsaneError::Shed { .. }
            | InsaneError::Backpressure
            | InsaneError::Memory(MemoryError::QuotaExceeded { .. })
    )
}

/// One victim round trip, driven exactly like the latency bench's
/// inline ping-pong. Victim-side refusals abort the run: an in-quota
/// tenant must never be punished for a neighbor's overload.
fn victim_round(pair: &InsanePair, v: &VictimPlumbing, msg: &[u8]) -> Result<u64, BenchError> {
    let hot = Technology::Dpdk;
    let t0 = Instant::now();
    let mut buf = v.ping_source.get_buffer(PAYLOAD).map_err(victim_refused)?;
    buf.copy_from_slice(msg);
    v.ping_source.emit(buf).map_err(victim_refused)?;
    pair.rt_a.poll_transmit(hot);
    let ping = loop {
        pair.rt_b.poll_technology(hot);
        match v.ping_sink.consume(ConsumeMode::NonBlocking) {
            Ok(m) => break m,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => return Err(e.into()),
        }
    };
    let mut echo = v
        .pong_source
        .get_buffer(ping.len())
        .map_err(victim_refused)?;
    echo.copy_from_slice(&ping);
    drop(ping);
    v.pong_source.emit(echo).map_err(victim_refused)?;
    pair.rt_b.poll_transmit(hot);
    loop {
        pair.rt_a.poll_technology(hot);
        match v.pong_sink.consume(ConsumeMode::NonBlocking) {
            Ok(_) => break,
            Err(InsaneError::WouldBlock) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(t0.elapsed().as_nanos() as u64)
}

fn victim_refused(e: InsaneError) -> BenchError {
    if is_typed_rejection(&e) {
        BenchError::Other(format!(
            "isolation violated: the in-quota victim tenant was refused: {e}"
        ))
    } else {
        BenchError::Insane(e)
    }
}

/// Runs the full experiment on `profile`: a solo baseline of `rounds`
/// victim RTTs, then a contended phase where the bulk tenant bursts
/// [`BULK_BURST`] emits before every victim round.
///
/// # Errors
///
/// Propagates middleware failures — including any typed refusal of the
/// victim, and any *untyped* failure of the bulk tenant (the noisy
/// neighbor may only ever see typed rejections).
pub fn run(
    profile: &TestbedProfile,
    rounds: usize,
    warmup: usize,
) -> Result<NoisyNeighborReport, BenchError> {
    let msg = vec![0xA5u8; PAYLOAD];

    // Phase 1: solo baseline. Tenants (and thus the DRR scheduler) are
    // configured identically, so the comparison isolates the *traffic*.
    let pair = build_pair(profile)?;
    let victim = victim_plumbing(&pair)?;
    let mut solo = Series::new();
    for i in 0..rounds + warmup {
        let rtt = victim_round(&pair, &victim, &msg)?;
        if i >= warmup {
            solo.push(rtt);
        }
    }
    drop(victim);
    drop(pair);

    // Phase 2: contended, on a fresh fabric.
    let pair = build_pair(profile)?;
    let victim = victim_plumbing(&pair)?;
    let bulk_session = Session::connect_with(&pair.rt_a, SessionConfig::for_tenant(BULK))?;
    let bulk_stream = bulk_session.create_stream(QosPolicy::fast())?;
    let sink_session = Session::connect_with(&pair.rt_b, SessionConfig::for_tenant(BULK))?;
    let sink_stream = sink_session.create_stream(QosPolicy::fast())?;
    let bulk_sink = sink_stream.create_sink(BULK_CHANNEL)?;
    pair.settle();
    let bulk_source = bulk_stream.create_source(BULK_CHANNEL)?;
    pair.settle();

    let mut contended = Series::new();
    let mut bulk_rejections = 0u64;
    for i in 0..rounds + warmup {
        // The noisy neighbor floods first, so its backlog is already
        // queued ahead of the victim's ping in every round.
        for _ in 0..BULK_BURST {
            match bulk_source.get_buffer(PAYLOAD) {
                Ok(mut buf) => {
                    buf.copy_from_slice(&msg);
                    match bulk_source.emit(buf) {
                        Ok(_) => {}
                        Err(e) if is_typed_rejection(&e) => bulk_rejections += 1,
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(e) if is_typed_rejection(&e) => bulk_rejections += 1,
                Err(e) => return Err(e.into()),
            }
        }
        let rtt = victim_round(&pair, &victim, &msg)?;
        if i >= warmup {
            contended.push(rtt);
        }
        // Drain the bulk sink so the receiver's pools recycle.
        while bulk_sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    }

    Ok(NoisyNeighborReport {
        solo,
        contended,
        bulk_rejections,
        victim_rejections: 0,
    })
}
