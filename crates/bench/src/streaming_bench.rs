//! Lunar Streaming vs sendfile measurements (Table 4, Fig. 11).
//!
//! Frames are streamed end to end on one thread: the server's
//! `send_frame_with` hook drives both runtimes and drains the client
//! between fragments (the inline equivalent of the deployment's
//! concurrent polling threads).  FPS is `frames / total wall time` of
//! that serial run — a conservative bound, since a pipelined deployment
//! overlaps the sender of frame *n+1* with the receiver of frame *n* —
//! and latency is the exact fragmentation→reassembly time per frame.

use std::time::Instant;

use insane_baselines::{SendfileReceiver, SendfileStreamer};
use insane_core::{ChannelId, QosPolicy, Technology};
use insane_fabric::{Fabric, TestbedProfile};
use lunar::streaming::{LunarStreamClient, LunarStreamServer};
use lunar::ReceivedFrame;

use crate::setup::{throughput_config, InsanePair};
use crate::BenchError;

/// The image resolutions of Table 4, with the paper's raw-RGB sizes.
pub const RESOLUTIONS: [(&str, usize); 5] = [
    ("HD", 2_760_000),      // 2.76 MB
    ("Full HD", 6_220_000), // 6.22 MB
    ("2K", 11_600_000),     // 11.6 MB
    ("4K", 24_880_000),     // 24.88 MB
    ("8K", 99_530_000),     // 99.53 MB
];

/// The streaming variants of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamVariant {
    /// Lunar Streaming over INSANE fast.
    LunarFast,
    /// Lunar Streaming over INSANE slow.
    LunarSlow,
    /// The `sendfile(2)` baseline.
    Sendfile,
}

impl StreamVariant {
    /// Label as used in the paper's Fig. 11 legend.
    pub fn label(&self) -> &'static str {
        match self {
            StreamVariant::LunarFast => "Lunar fast",
            StreamVariant::LunarSlow => "Lunar slow",
            StreamVariant::Sendfile => "sendfile",
        }
    }
}

/// Result of streaming several frames of one resolution.
#[derive(Debug, Clone, Copy)]
pub struct StreamingResult {
    /// Frames per second sustained by the serial end-to-end run.
    pub fps: f64,
    /// Mean end-to-end per-frame latency, nanoseconds.
    pub latency_ns: u64,
}

/// Measures FPS and per-frame latency for `variant` at `frame_size`.
///
/// # Errors
///
/// Propagates failures from the variant under measurement.
pub fn run_streaming(
    variant: StreamVariant,
    profile: &TestbedProfile,
    frame_size: usize,
    frames: usize,
) -> Result<StreamingResult, BenchError> {
    match variant {
        StreamVariant::LunarFast => lunar_streaming(
            profile,
            QosPolicy::fast(),
            Technology::Dpdk,
            frame_size,
            frames,
        ),
        StreamVariant::LunarSlow => lunar_streaming(
            profile,
            QosPolicy::slow(),
            Technology::KernelUdp,
            frame_size,
            frames,
        ),
        StreamVariant::Sendfile => sendfile_streaming(profile, frame_size, frames),
    }
}

fn test_frame(size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| ((i as u32).wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect()
}

fn lunar_streaming(
    profile: &TestbedProfile,
    qos: QosPolicy,
    hot_path: Technology,
    frame_size: usize,
    frames: usize,
) -> Result<StreamingResult, BenchError> {
    let pair = InsanePair::with_config(
        crate::setup::throughput_profile(profile.clone()),
        &[Technology::KernelUdp, Technology::Dpdk],
        throughput_config,
    )?;
    let mut client = LunarStreamClient::connect(&pair.rt_b, qos, ChannelId(700))?;
    pair.settle();
    let mut server = LunarStreamServer::open(&pair.rt_a, qos, ChannelId(700))?;
    pair.settle();
    let frame = test_frame(frame_size);

    let mut latency_total = 0u64;
    let t_run = Instant::now();
    for _ in 0..frames {
        let mut completed: Vec<ReceivedFrame> = Vec::new();
        // The progress hook plays all three deployed threads: both
        // runtimes' polling work and the client application draining
        // fragments — otherwise a 100 MB frame (≈11k fragments)
        // exhausts every pool slot mid-send.  The hook cannot return an
        // error, so the first poll failure is parked and re-raised.
        let mut poll_err = None;
        {
            let client = &mut client;
            let completed = &mut completed;
            let poll_err = &mut poll_err;
            server.send_frame_with(&frame, || {
                pair.rt_a.poll_technology(hot_path);
                pair.rt_b.poll_technology(hot_path);
                match client.poll_frames() {
                    Ok(frames) => completed.extend(frames),
                    Err(e) => {
                        poll_err.get_or_insert(e);
                    }
                }
            })?;
        }
        if let Some(e) = poll_err {
            return Err(e.into());
        }
        // Drain until the frame completes.
        let done = loop {
            if let Some(f) = completed.pop() {
                break f;
            }
            pair.rt_a.poll_technology(hot_path);
            pair.rt_b.poll_technology(hot_path);
            completed.extend(client.poll_frames()?);
        };
        if done.data.len() != frame_size {
            return Err(BenchError::Other(format!(
                "frame reassembled to {} of {frame_size} bytes",
                done.data.len()
            )));
        }
        latency_total += done.latency_ns;
    }
    let total_ns = t_run.elapsed().as_nanos() as u64;
    Ok(StreamingResult {
        fps: frames as f64 * 1e9 / total_ns as f64,
        latency_ns: latency_total / frames as u64,
    })
}

fn sendfile_streaming(
    profile: &TestbedProfile,
    frame_size: usize,
    frames: usize,
) -> Result<StreamingResult, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let mut tx = SendfileStreamer::open(&fabric, a, 6000).map_err(baseline)?;
    let rx = SendfileReceiver::open(&fabric, b, 6000).map_err(baseline)?;
    let frame = test_frame(frame_size);

    let mut latency_total = 0u64;
    let t_run = Instant::now();
    for _ in 0..frames {
        let mut completed: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut poll_err = None;
        let t0 = Instant::now();
        {
            let rx = &rx;
            let completed = &mut completed;
            let poll_err = &mut poll_err;
            tx.send_frame_with(&frame, rx.local_addr(), || match rx.poll_frames() {
                Ok(frames) => completed.extend(frames),
                Err(e) => {
                    poll_err.get_or_insert(e);
                }
            })
            .map_err(baseline)?;
        }
        if let Some(e) = poll_err {
            return Err(baseline(e));
        }
        let data = loop {
            completed.extend(rx.poll_frames().map_err(baseline)?);
            if let Some((_, data)) = completed.pop() {
                break data;
            }
            core::hint::spin_loop();
        };
        if data.len() != frame_size {
            return Err(BenchError::Other(format!(
                "sendfile frame reassembled to {} of {frame_size} bytes",
                data.len()
            )));
        }
        latency_total += t0.elapsed().as_nanos() as u64;
    }
    let total_ns = t_run.elapsed().as_nanos() as u64;
    Ok(StreamingResult {
        fps: frames as f64 * 1e9 / total_ns as f64,
        latency_ns: latency_total / frames as u64,
    })
}

/// Wraps a baseline error (the sendfile baseline has its own type).
fn baseline(e: insane_baselines::BaselineError) -> BenchError {
    BenchError::Other(format!("baseline: {e}"))
}
