//! Mixed-criticality timing-isolation experiment (DESIGN.md §14).
//!
//! One time-critical flow and one saturating bulk tenant share a pair
//! of INSANE runtimes whose hot shard runs the 802.1Qbv time-aware
//! scheduler: the first 200 µs of every 1 ms cycle belong exclusively
//! to TC7, a 20 µs guard band precedes every window edge, and each
//! frame is metered against its transmission time so no release can
//! straddle a gate close.  The fabric's seeded fault injector replays
//! drops and reorders underneath both flows.
//!
//! The experiment measures the critical flow's one-way latency at
//! increasing bulk load points (a solo baseline first, then growing
//! bulk bursts per round) and asserts the timing contract: every
//! delivered critical message lands inside its per-message latency
//! budget, and the critical p99.9 under bulk saturation stays within a
//! bounded factor of the solo p99.9.  Lost rounds (fault drops or a
//! missed deadline) are reported, not failed — the injector is *meant*
//! to take frames.
//!
//! Exported as the schema-validated `BENCH_isolation.json`; the
//! validator re-checks the budget, the tail bound, and that the gates
//! actually deferred frames on every consumer (`insanectl
//! check-bench`, CI).

use std::time::{Duration, Instant};

use insane_core::{
    Acceleration, ChannelId, ConsumeMode, InsaneError, MemoryError, QosPolicy, ResourceUsage,
    SchedulerChoice, Session, SessionConfig, Sink, Source, Technology, TenantId, TenantQuota,
    TenantRate, TenantSpec, TimeSensitivity, Tunables,
};
use insane_fabric::{FaultPlan, FaultStats, TestbedProfile};

use crate::export::IsolationEntry;
use crate::setup::InsanePair;
use crate::stats::Series;
use crate::BenchError;

/// The time-critical tenant under measurement.
pub const CRITICAL: TenantId = 1;
/// The saturating best-effort tenant.
pub const BULK: TenantId = 2;
/// Channel carrying the critical one-way flow.
pub const CRIT_CHANNEL: ChannelId = ChannelId(210);
/// Channel carrying the bulk flood.
pub const BULK_CHANNEL: ChannelId = ChannelId(211);
/// Payload size of every message in the experiment.
pub const PAYLOAD: usize = 64;
/// Gate cycle of the time-aware shard scheduler.
pub const CYCLE: Duration = Duration::from_millis(1);
/// Exclusive TC7 window at the head of each cycle.
pub const CRITICAL_WINDOW: Duration = Duration::from_micros(200);
/// Guard band preceding every window edge.
pub const GUARD_BAND: Duration = Duration::from_micros(20);
/// Modeled per-frame transmission time the gates meter against.
pub const FRAME_TX: Duration = Duration::from_micros(1);
/// Per-message latency budget: generous against the ≤1 cycle worst-case
/// gate wait, tight enough that a frame parked behind bulk backlog (the
/// pre-fix straddle bug) would blow it.
pub const BUDGET: Duration = Duration::from_millis(25);
/// Give-up deadline per round; a slower message counts as `lost`.
pub const DEADLINE: Duration = Duration::from_millis(250);
/// Tail-isolation bound in thousandths: the contended critical p99.9
/// must stay within 2.000x of the solo p99.9 (the ISSUE acceptance
/// criterion).
pub const TAIL_BOUND_X1000: u64 = 2_000;

/// Seeded fault probabilities replayed under every load point.
const FAULT_DROP: f64 = 0.01;
const FAULT_REORDER: f64 = 0.05;
/// Deterministic injector seed (varied per load point).
const FAULT_SEED: u64 = 0xC0FF_EE00;

/// Sustained bulk admission rate (messages/sec) — low enough that the
/// larger bursts overrun their token bucket and collect typed refusals.
const BULK_RATE_PER_SEC: u64 = 2_000;
/// Bulk bucket capacity after idle.
const BULK_BURST_CAP: u64 = 32;

/// One measured load point of the experiment.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Bulk emit attempts per critical round (0 = solo baseline).
    pub bulk_burst: usize,
    /// Delivered critical one-way latencies, nanoseconds.
    pub series: Series,
    /// Delivered messages that exceeded [`BUDGET`].
    pub budget_violations: u64,
    /// Rounds whose message never arrived within [`DEADLINE`].
    pub lost: u64,
    /// Typed refusals the bulk tenant received.
    pub bulk_rejections: u64,
    /// Gate deferrals accumulated by both runtimes at this load point.
    pub gate_deferrals: u64,
    /// The fault injector's record for this load point.
    pub faults: FaultStats,
}

/// Outcome of one mixed-criticality run: the solo baseline first, then
/// each requested bulk load point.
#[derive(Debug, Clone)]
pub struct MixedCriticalityReport {
    /// Measured load points, `bulk_burst == 0` first.
    pub points: Vec<LoadPoint>,
}

impl MixedCriticalityReport {
    /// The solo baseline's p99.9, floored at one gate cycle: a solo
    /// tail below a cycle reflects gate-phase luck, not middleware
    /// cost, so the ratio denominator never collapses below the
    /// scheduler's own timescale.
    pub fn solo_p999_ns(&self) -> u64 {
        self.points
            .iter()
            .find(|p| p.bulk_burst == 0)
            .map_or(0, |p| p.series.p999())
            .max(CYCLE.as_nanos() as u64)
    }

    /// Converts the report into `BENCH_isolation.json` entries.
    pub fn to_entries(&self, system: &str, testbed: &str) -> Vec<IsolationEntry> {
        let solo = self.solo_p999_ns();
        self.points
            .iter()
            .map(|p| IsolationEntry {
                system: system.to_string(),
                testbed: testbed.to_string(),
                samples: p.series.len(),
                bulk_burst: p.bulk_burst,
                p50_ns: p.series.median(),
                p99_ns: p.series.p99(),
                p999_ns: p.series.p999(),
                solo_p999_ns: solo,
                budget_ns: BUDGET.as_nanos() as u64,
                budget_violations: p.budget_violations,
                ratio_x1000: p.series.p999().saturating_mul(1_000) / solo.max(1),
                bound_x1000: TAIL_BOUND_X1000,
                gate_deferrals: p.gate_deferrals,
                lost: p.lost,
                bulk_rejections: p.bulk_rejections,
                injected_drops: p.faults.injected_drops,
                reorders: p.faults.reorders,
            })
            .collect()
    }
}

/// Tenant configuration shared by every load point: the critical tenant
/// gets a reservation and a 4x DRR weight, the bulk tenant a small slot
/// quota and a token bucket the larger bursts overrun.
fn tenant_specs() -> [TenantSpec; 2] {
    [
        TenantSpec::new(CRITICAL, TenantQuota::new(4, 16)).with_weight(4),
        TenantSpec::new(BULK, TenantQuota::new(4, 16))
            .with_rate(TenantRate::new(BULK_RATE_PER_SEC, BULK_BURST_CAP))
            .with_weight(1),
    ]
}

fn build_pair(profile: &TestbedProfile) -> Result<InsanePair, BenchError> {
    InsanePair::with_config(
        profile.clone(),
        &[Technology::KernelUdp, Technology::Dpdk],
        |mut c| {
            for spec in tenant_specs() {
                c = c.with_tenant(spec);
            }
            c.with_scheduler(SchedulerChoice::TimeAware {
                critical_window: CRITICAL_WINDOW,
                cycle: CYCLE,
                guard_band: GUARD_BAND,
                frame_tx: FRAME_TX,
            })
        },
    )
}

/// The critical flow's one-way plumbing under its own tenant sessions.
struct CriticalPlumbing {
    // Sessions own their streams; dropping them tears the plumbing down.
    _session_a: Session,
    _session_b: Session,
    source: Source,
    sink: Sink,
}

fn critical_plumbing(pair: &InsanePair) -> Result<CriticalPlumbing, BenchError> {
    let qos = QosPolicy {
        acceleration: Acceleration::Preferred,
        resource_usage: ResourceUsage::Unconstrained,
        time_sensitivity: TimeSensitivity::time_critical(),
    };
    let session_a = Session::connect_with(&pair.rt_a, SessionConfig::for_tenant(CRITICAL))?;
    let session_b = Session::connect_with(&pair.rt_b, SessionConfig::for_tenant(CRITICAL))?;
    let stream_a = session_a.create_stream(qos)?;
    let stream_b = session_b.create_stream(qos)?;
    let sink = stream_b.create_sink(CRIT_CHANNEL)?;
    pair.settle();
    let source = stream_a.create_source(CRIT_CHANNEL)?;
    pair.settle();
    Ok(CriticalPlumbing {
        _session_a: session_a,
        _session_b: session_b,
        source,
        sink,
    })
}

/// Is this error one of the typed refusals the isolation machinery may
/// answer a saturating tenant with?
fn is_typed_rejection(e: &InsaneError) -> bool {
    matches!(
        e,
        InsaneError::AdmissionRejected { .. }
            | InsaneError::Shed { .. }
            | InsaneError::Backpressure
            | InsaneError::Memory(MemoryError::QuotaExceeded { .. })
    )
}

fn critical_refused(e: InsaneError) -> BenchError {
    if is_typed_rejection(&e) {
        BenchError::Other(format!(
            "timing isolation violated: the time-critical tenant was refused: {e}"
        ))
    } else {
        BenchError::Insane(e)
    }
}

/// One critical round: emit a sequence-stamped message, drive both
/// runtimes inline until *that* sequence arrives (stale deliveries from
/// reorder/duplicate faults are discarded), or give up at [`DEADLINE`].
/// Returns the one-way latency, or `None` for a lost round.
fn critical_round(
    pair: &InsanePair,
    crit: &CriticalPlumbing,
    seq: u64,
) -> Result<Option<u64>, BenchError> {
    let mut buf = crit.source.get_buffer(PAYLOAD).map_err(critical_refused)?;
    buf.fill(0);
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    let t0 = Instant::now();
    crit.source.emit(buf).map_err(critical_refused)?;
    loop {
        pair.rt_a.poll_once();
        pair.rt_b.poll_once();
        match crit.sink.consume(ConsumeMode::NonBlocking) {
            Ok(msg) => {
                let mut got = [0u8; 8];
                got.copy_from_slice(&msg[..8]);
                if u64::from_le_bytes(got) == seq {
                    return Ok(Some(t0.elapsed().as_nanos() as u64));
                }
                // A stale or corrupt delivery (reorder, duplicate): discard.
            }
            Err(InsaneError::WouldBlock) => {
                if t0.elapsed() > DEADLINE {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Provably exercises the gate machinery before measuring: reloads a
/// guard band wider than every open window (so the next critical frame
/// *must* be deferred), parks one frame against it, then restores the
/// configured guard band and drains.  This also covers the
/// `tas_guard_band_ns` hot-reload path end to end on every run.
fn exercise_guard_band(pair: &InsanePair, crit: &CriticalPlumbing) -> Result<(), BenchError> {
    let wide = Tunables {
        tas_guard_band_ns: Some(900_000),
        ..Tunables::default()
    };
    pair.rt_a.reload_tunables(wide)?;
    let mut buf = crit.source.get_buffer(PAYLOAD).map_err(critical_refused)?;
    buf.fill(0);
    crit.source.emit(buf).map_err(critical_refused)?;
    for _ in 0..300 {
        pair.rt_a.poll_once();
        pair.rt_b.poll_once();
    }
    let restored = Tunables {
        tas_guard_band_ns: Some(GUARD_BAND.as_nanos() as u64),
        ..Tunables::default()
    };
    pair.rt_a.reload_tunables(restored)?;
    let t0 = Instant::now();
    loop {
        pair.rt_a.poll_once();
        pair.rt_b.poll_once();
        match crit.sink.consume(ConsumeMode::NonBlocking) {
            Ok(_) => return Ok(()),
            Err(InsaneError::WouldBlock) => {
                if t0.elapsed() > DEADLINE {
                    return Err(BenchError::Other(
                        "gate exercise: the parked frame never drained after \
                         the guard band was restored"
                            .into(),
                    ));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Runs one load point on a fresh pair: `rounds` measured critical
/// rounds after `warmup`, with `bulk_burst` best-effort emits flooded
/// ahead of every round and the seeded fault plan live underneath.
fn run_load_point(
    profile: &TestbedProfile,
    rounds: usize,
    warmup: usize,
    bulk_burst: usize,
) -> Result<LoadPoint, BenchError> {
    let pair = build_pair(profile)?;
    let crit = critical_plumbing(&pair)?;

    // Bulk plumbing only when this load point floods.
    let bulk = if bulk_burst > 0 {
        let session = Session::connect_with(&pair.rt_a, SessionConfig::for_tenant(BULK))?;
        let stream = session.create_stream(QosPolicy::fast())?;
        let sink_session = Session::connect_with(&pair.rt_b, SessionConfig::for_tenant(BULK))?;
        let sink_stream = sink_session.create_stream(QosPolicy::fast())?;
        let sink = sink_stream.create_sink(BULK_CHANNEL)?;
        pair.settle();
        let source = stream.create_source(BULK_CHANNEL)?;
        pair.settle();
        Some((session, sink_session, source, sink))
    } else {
        None
    };

    exercise_guard_band(&pair, &crit)?;

    // Faults go live only after the control plane has settled and the
    // gate exercise has drained, so setup traffic is never taken.
    let faults = pair.fabric.faults();
    faults.seed(FAULT_SEED ^ bulk_burst as u64);
    faults.set_default_plan(FaultPlan {
        drop: FAULT_DROP,
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: FAULT_REORDER,
    });

    let mut series = Series::new();
    let mut budget_violations = 0u64;
    let mut lost = 0u64;
    let mut bulk_rejections = 0u64;
    let budget_ns = BUDGET.as_nanos() as u64;
    for i in 0..rounds + warmup {
        if let Some((_, _, source, _)) = &bulk {
            // The bulk tenant floods first, so its backlog is already
            // queued at TC0 when the critical frame arrives at TC7.
            for _ in 0..bulk_burst {
                match source.get_buffer(PAYLOAD) {
                    Ok(mut buf) => {
                        buf.fill(0xB5);
                        match source.emit(buf) {
                            Ok(_) => {}
                            Err(e) if is_typed_rejection(&e) => bulk_rejections += 1,
                            Err(e) => return Err(e.into()),
                        }
                    }
                    Err(e) if is_typed_rejection(&e) => bulk_rejections += 1,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        match critical_round(&pair, &crit, 1 + i as u64)? {
            Some(ns) if i >= warmup => {
                if ns > budget_ns {
                    budget_violations += 1;
                }
                series.push(ns);
            }
            Some(_) => {}
            None if i >= warmup => lost += 1,
            None => {}
        }
        if let Some((_, _, _, sink)) = &bulk {
            // Drain the bulk sink so the receiver's pools recycle.
            while sink.consume(ConsumeMode::NonBlocking).is_ok() {}
        }
    }

    let gate_deferrals = pair.rt_a.stats().gate_deferrals + pair.rt_b.stats().gate_deferrals;
    Ok(LoadPoint {
        bulk_burst,
        series,
        budget_violations,
        lost,
        bulk_rejections,
        gate_deferrals,
        faults: faults.stats(),
    })
}

/// Runs the full experiment on `profile`: a solo baseline (bulk burst
/// 0) first, then one load point per entry of `bulk_bursts`, each on a
/// fresh fabric.
///
/// # Errors
///
/// Propagates middleware failures — including any typed refusal of the
/// time-critical tenant, and any *untyped* failure of the bulk tenant.
pub fn run(
    profile: &TestbedProfile,
    rounds: usize,
    warmup: usize,
    bulk_bursts: &[usize],
) -> Result<MixedCriticalityReport, BenchError> {
    let mut points = vec![run_load_point(profile, rounds, warmup, 0)?];
    for &burst in bulk_bursts.iter().filter(|&&b| b > 0) {
        points.push(run_load_point(profile, rounds, warmup, burst)?);
    }
    Ok(MixedCriticalityReport { points })
}
