//! Experiment harness for the INSANE reproduction.
//!
//! Every table and figure of the paper's evaluation (§6–7) has a bench
//! target in this crate (see `benches/`); each prints the same rows or
//! series the paper reports and writes a CSV under `target/experiments/`.
//! The heavy lifting lives here so the targets stay thin and the
//! `all_experiments` binary can run the full suite.
//!
//! ## Measurement methodology (single-core host)
//!
//! This machine exposes **one CPU**, so nothing µs-scale can be measured
//! across busy-polling threads (the scheduler hands out ~ms quanta).  Two
//! techniques make the experiments exact anyway:
//!
//! * **Latency** — a ping-pong's critical path is serial by nature:
//!   client work → wire → server work → wire back.  The harness drives
//!   both endpoints (and their INSANE runtimes, in
//!   [`insane_core::ThreadingMode::Manual`]) inline on one thread, so the
//!   wall clock accumulates exactly the modeled device costs plus the
//!   *real* execution time of every middleware instruction.
//! * **Throughput** — the paper's sender/receiver run concurrently on
//!   different hosts, so goodput is the slowest pipeline stage.  The
//!   harness times the TX stage and the RX stage separately and reports
//!   `payload·n / max(T_tx, T_rx, T_wire)` ([`throughput`]); the wire
//!   stage is the link-serialization bound.
//!
//! Iteration counts default to a quick profile (hundreds of round trips,
//! tens of thousands of throughput messages — the paper uses 1 M);
//! set `INSANE_BENCH_FACTOR` (e.g. `10`) to scale them up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod experiments;
pub mod export;
pub mod hotpath;
pub mod ipc_bench;
pub mod latency;
pub mod mixed_criticality;
pub mod mom_bench;
pub mod noisy_neighbor;
pub mod report;
pub mod setup;
pub mod shard_bench;
pub mod stats;
pub mod streaming_bench;
pub mod throughput;

/// Harness failure: any layer of the stack under measurement refused.
///
/// The harness functions return this instead of panicking (`insane-lint`
/// bans panic paths in the runtime crates, and the bench crate follows
/// the same discipline outside the Table 3 LoC-measured apps) so a
/// failed experiment reports *which* stage died instead of poisoning the
/// whole suite.
#[derive(Debug)]
pub enum BenchError {
    /// An INSANE middleware call failed.
    Insane(insane_core::InsaneError),
    /// A raw fabric/device call failed.
    Fabric(insane_fabric::FabricError),
    /// A Demikernel call failed.
    Demi(insane_demikernel::DemiError),
    /// A Lunar application-framework call failed.
    Lunar(lunar::LunarError),
    /// Report/export I/O failed.
    Io(std::io::Error),
    /// Anything else (setup invariants, unexpected event shapes).
    Other(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Insane(e) => write!(f, "insane: {e}"),
            BenchError::Fabric(e) => write!(f, "fabric: {e}"),
            BenchError::Demi(e) => write!(f, "demikernel: {e}"),
            BenchError::Lunar(e) => write!(f, "lunar: {e}"),
            BenchError::Io(e) => write!(f, "io: {e}"),
            BenchError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<insane_core::InsaneError> for BenchError {
    fn from(e: insane_core::InsaneError) -> Self {
        BenchError::Insane(e)
    }
}

impl From<insane_fabric::FabricError> for BenchError {
    fn from(e: insane_fabric::FabricError) -> Self {
        BenchError::Fabric(e)
    }
}

impl From<insane_demikernel::DemiError> for BenchError {
    fn from(e: insane_demikernel::DemiError) -> Self {
        BenchError::Demi(e)
    }
}

impl From<lunar::LunarError> for BenchError {
    fn from(e: lunar::LunarError) -> Self {
        BenchError::Lunar(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Scale factor for iteration counts (`INSANE_BENCH_FACTOR`, default 1).
pub fn bench_factor() -> f64 {
    std::env::var("INSANE_BENCH_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|f: &f64| *f > 0.0)
        .unwrap_or(1.0)
}

/// Scales a base iteration count by [`bench_factor`] (min 1).
pub fn iters(base: usize) -> usize {
    ((base as f64 * bench_factor()) as usize).max(1)
}
