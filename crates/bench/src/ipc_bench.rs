//! Process-split experiment (DESIGN.md §13): what does the OS process
//! boundary cost, and does crash isolation actually work?
//!
//! Three phases, exported as the schema-validated `BENCH_ipc.json`:
//!
//! * **in-process baseline** — the identical datapath (segment-backed
//!   [`SlotPool`], two offset-addressed SPSC descriptor rings, a
//!   forwarder loop with the daemon's burst size and idle sleep) wired
//!   inside one process.  Round-trip latency here is the floor the
//!   process split is judged against.
//! * **cross-process** — a real daemon in another OS process (the bench
//!   binary re-execs itself in `--serve` mode), a real `attach` over the
//!   Unix control socket, the same ping-pong through the `mmap`ed
//!   segment.  The schema gate: cross-process p99 ≤
//!   [`BOUND_X1000`]/1000 × the in-process p99.
//! * **crash reclaim** — a `--crash` child attaches, checks slots out,
//!   and aborts without cleanup; the daemon must force-reclaim every
//!   one (`leaked_slots == 0`) and report how long death-to-reclaim
//!   took.
//!
//! The forwarder and both clients yield rather than spin: CI runners
//! may be single-core, and every phase here is scheduler-bound anyway.

use std::time::{Duration, Instant};

use insane_ipc::loopback::InProcessLoop;
use insane_ipc::{IpcClient, IpcError, ServerStatsSnapshot};

use crate::stats::Series;
use crate::BenchError;

/// Overhead gate in thousandths: cross-process round-trip p99 may cost
/// at most 2.000x the in-process baseline p99 (ISSUE acceptance bound).
pub const BOUND_X1000: u64 = 2_000;

/// Slots the crash child checks out before aborting.
pub const CRASH_SLOTS: usize = 12;

/// Pool/ring shape of the in-process baseline — matches the daemon's
/// session defaults so the two phases compare the same structure.
const SLOT_SIZE: usize = 2048;
const SLOT_COUNT: usize = 256;
const RING_CAPACITY: usize = 64;

fn ipc_err(stage: &str, e: IpcError) -> BenchError {
    BenchError::Other(format!("{stage}: {e}"))
}

/// Outcome of one process-split run.
#[derive(Debug, Clone)]
pub struct IpcReport {
    /// Round trips timed per deployment.
    pub messages: usize,
    /// In-process round-trip latencies, nanoseconds.
    pub in_process: Series,
    /// Cross-process round-trip latencies, nanoseconds.
    pub cross_process: Series,
    /// Attach slow path (connect → handshake → mmap → ring attach).
    pub attach_ns: u64,
    /// Death-to-reclaim latency the daemon measured, nanoseconds.
    pub reclaim_ns: u64,
    /// Slots the daemon force-reclaimed from the crashed child.
    pub reclaimed_slots: u64,
    /// Slots still outstanding after the reclaim (must be 0).
    pub leaked_slots: u64,
}

impl IpcReport {
    /// cross/in-process p99 ratio, fixed-point thousandths.
    pub fn ratio_x1000(&self) -> u64 {
        let baseline = self.in_process.p99().max(1);
        self.cross_process.p99().saturating_mul(1000) / baseline
    }
}

/// The in-process baseline: the daemon-shaped datapath
/// ([`InProcessLoop`]) wired inside this process, ping-pong round trips
/// on the caller's thread.
///
/// # Errors
///
/// [`BenchError::Other`] if any pool/ring operation refuses — the
/// baseline is sized so that it never should.
pub fn run_in_process(messages: usize) -> Result<Series, BenchError> {
    let lb = InProcessLoop::new(SLOT_SIZE, SLOT_COUNT, RING_CAPACITY)
        .map_err(|e| ipc_err("baseline setup", e))?;
    let mut series = Series::new();
    for i in 0..messages as u64 {
        let started = Instant::now();
        let mut guard = lb.lend(8).map_err(|e| ipc_err("baseline lend", e))?;
        guard.copy_from_slice(&i.to_le_bytes());
        let mut pending = guard;
        loop {
            match lb.emit(pending) {
                Ok(()) => break,
                Err(guard) => {
                    pending = guard;
                    std::thread::yield_now();
                }
            }
        }
        loop {
            if let Some(view) = lb.try_recv() {
                drop(view);
                break;
            }
            std::thread::yield_now();
        }
        series.push(started.elapsed().as_nanos() as u64);
    }
    let leftover = lb.pool().stats().in_use;
    if leftover != 0 {
        return Err(BenchError::Other(format!(
            "baseline phase leaked {leftover} checkout(s)"
        )));
    }
    Ok(series)
}

/// The cross-process phase: attach to the daemon at `socket` (timing the
/// slow path), ping-pong `messages` round trips, detach.  Returns the
/// latency series and the attach time.
///
/// # Errors
///
/// [`BenchError::Other`] wrapping the failing [`IpcError`].
pub fn run_cross_process(
    socket: &std::path::Path,
    messages: usize,
) -> Result<(Series, u64), BenchError> {
    let started = Instant::now();
    let mut client =
        IpcClient::attach(socket, "bench", "fast").map_err(|e| ipc_err("attach", e))?;
    let attach_ns = started.elapsed().as_nanos() as u64;
    let stream = client
        .create_stream("pingpong")
        .map_err(|e| ipc_err("stream", e))?;

    let mut series = Series::new();
    for i in 0..messages as u64 {
        let started = Instant::now();
        let mut guard = client.lend(8).map_err(|e| ipc_err("lend", e))?;
        guard.copy_from_slice(&i.to_le_bytes());
        let mut pending = guard;
        loop {
            match client.emit(stream, pending) {
                Ok(()) => break,
                Err(guard) => {
                    pending = guard;
                    std::thread::yield_now();
                }
            }
        }
        loop {
            if let Some((_, view)) = client.try_recv() {
                drop(view);
                break;
            }
            std::thread::yield_now();
        }
        series.push(started.elapsed().as_nanos() as u64);
    }
    let leftover = client.pool().stats().in_use;
    if leftover != 0 {
        return Err(BenchError::Other(format!(
            "cross-process phase leaked {leftover} checkout(s)"
        )));
    }
    client.detach().map_err(|e| ipc_err("detach", e))?;
    Ok((series, attach_ns))
}

/// The crash phase driven from the parent: `spawn_crasher` must start a
/// process that attaches to `socket`, checks [`CRASH_SLOTS`] slots out,
/// and dies without cleanup.  Polls the daemon (through `stats`) until
/// the reclaim shows up and returns `(reclaim_ns, reclaimed, leaked)`.
///
/// # Errors
///
/// [`BenchError::Other`] if the reclaim never lands within 10s.
pub fn run_crash_reclaim(
    socket: &std::path::Path,
    spawn_crasher: &mut dyn FnMut() -> Result<(), BenchError>,
) -> Result<(u64, u64, u64), BenchError> {
    let mut observer =
        IpcClient::attach(socket, "observer", "fast").map_err(|e| ipc_err("observer attach", e))?;
    let before = observer.daemon_stats().map_err(|e| ipc_err("stats", e))?;
    spawn_crasher()?;

    let deadline = Instant::now() + Duration::from_secs(10);
    let stats: ServerStatsSnapshot = loop {
        let stats = observer.daemon_stats().map_err(|e| ipc_err("stats", e))?;
        if stats.reclaims > before.reclaims {
            break stats;
        }
        if Instant::now() >= deadline {
            return Err(BenchError::Other(
                "daemon never reclaimed the crashed client".into(),
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    observer
        .detach()
        .map_err(|e| ipc_err("observer detach", e))?;
    Ok((
        stats.last_reclaim_ns,
        stats.reclaimed_slots - before.reclaimed_slots,
        stats.leaked_slots,
    ))
}
