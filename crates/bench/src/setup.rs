//! Builders for the two-node experiment topologies.

use insane_core::runtime::poll_until_quiescent;
use insane_core::{
    ChannelId, QosPolicy, Runtime, RuntimeConfig, Session, Sink, Source, ThreadingMode,
};
use insane_fabric::{Fabric, HostId, Technology, TestbedProfile};

use crate::BenchError;

/// Channel used for the A→B direction of ping-pongs.
pub const PING_CHANNEL: ChannelId = ChannelId(100);
/// Channel used for the B→A direction of ping-pongs.
pub const PONG_CHANNEL: ChannelId = ChannelId(101);

/// A fully-peered two-node INSANE deployment, manually driven.
#[derive(Debug)]
pub struct InsanePair {
    /// The wire.
    pub fabric: Fabric,
    /// Producer-side runtime (host A).
    pub rt_a: Runtime,
    /// Consumer-side runtime (host B).
    pub rt_b: Runtime,
    /// Host A id.
    pub host_a: HostId,
    /// Host B id.
    pub host_b: HostId,
    /// Session on A (kept alive for its streams).
    pub session_a: Session,
    /// Session on B.
    pub session_b: Session,
}

impl InsanePair {
    /// Builds two manually-driven runtimes on a fresh fabric, peers them,
    /// and lets the control plane settle.
    ///
    /// # Errors
    ///
    /// Propagates runtime startup and peering failures.
    pub fn new(profile: TestbedProfile, techs: &[Technology]) -> Result<Self, BenchError> {
        Self::with_config(profile, techs, |c| c)
    }

    /// As [`InsanePair::new`] with a config hook (pool sizes, burst, …)
    /// applied to both runtimes.
    ///
    /// # Errors
    ///
    /// Propagates runtime startup and peering failures.
    pub fn with_config(
        profile: TestbedProfile,
        techs: &[Technology],
        tweak: impl Fn(RuntimeConfig) -> RuntimeConfig,
    ) -> Result<Self, BenchError> {
        let fabric = Fabric::new(profile);
        let host_a = fabric.add_host("node-a");
        let host_b = fabric.add_host("node-b");
        let rt_a = Runtime::start(
            tweak(
                RuntimeConfig::new(1)
                    .with_technologies(techs)
                    .with_threading(ThreadingMode::Manual),
            ),
            &fabric,
            host_a,
        )?;
        let rt_b = Runtime::start(
            tweak(
                RuntimeConfig::new(2)
                    .with_technologies(techs)
                    .with_threading(ThreadingMode::Manual),
            ),
            &fabric,
            host_b,
        )?;
        rt_a.add_peer(host_b)?;
        poll_until_quiescent(&[&rt_a, &rt_b], 100_000);
        let session_a = Session::connect(&rt_a)?;
        let session_b = Session::connect(&rt_b)?;
        Ok(Self {
            fabric,
            rt_a,
            rt_b,
            host_a,
            host_b,
            session_a,
            session_b,
        })
    }

    /// Lets in-flight control traffic settle.
    pub fn settle(&self) {
        poll_until_quiescent(&[&self.rt_a, &self.rt_b], 100_000);
    }

    /// Creates the classic ping-pong plumbing on `qos`: a source on A and
    /// sink on B (ping channel), plus the reverse pair (pong channel).
    /// Returns `(ping_source, ping_sink_on_b, pong_source, pong_sink_on_a)`.
    ///
    /// # Errors
    ///
    /// Propagates stream/source/sink creation failures.
    pub fn ping_pong(&self, qos: QosPolicy) -> Result<(Source, Sink, Source, Sink), BenchError> {
        let stream_a = self.session_a.create_stream(qos)?;
        let stream_b = self.session_b.create_stream(qos)?;
        let ping_sink = stream_b.create_sink(PING_CHANNEL)?;
        let pong_sink = stream_a.create_sink(PONG_CHANNEL)?;
        self.settle();
        let ping_source = stream_a.create_source(PING_CHANNEL)?;
        let pong_source = stream_b.create_source(PONG_CHANNEL)?;
        self.settle();
        Ok((ping_source, ping_sink, pong_source, pong_sink))
    }

    /// One-way plumbing: a source on A, `sink_count` sinks on B, all on
    /// the ping channel.
    ///
    /// # Errors
    ///
    /// Propagates stream/source/sink creation failures.
    pub fn one_way(
        &self,
        qos: QosPolicy,
        sink_count: usize,
    ) -> Result<(Source, Vec<Sink>), BenchError> {
        let stream_a = self.session_a.create_stream(qos)?;
        let stream_b = self.session_b.create_stream(qos)?;
        let sinks = (0..sink_count)
            .map(|_| stream_b.create_sink(PING_CHANNEL))
            .collect::<Result<Vec<Sink>, _>>()?;
        self.settle();
        let source = stream_a.create_source(PING_CHANNEL)?;
        self.settle();
        Ok((source, sinks))
    }
}

/// Runtime-config hook for throughput runs: pools sized so that every
/// in-flight frame (TX backlog plus the receiver's NIC ring) has a slot
/// with room to spare, while keeping the slot working set small enough
/// to stay cache-resident on this vCPU.
pub fn throughput_config(config: RuntimeConfig) -> RuntimeConfig {
    let mut config = config;
    config.small_slots = 1_024;
    config.large_slots = 1_024;
    config.tx_queue_depth = 256;
    config.sink_queue_depth = 2_048;
    config.burst = 64;
    config
}

/// Profile tweak paired with [`throughput_config`]: a shallower NIC ring
/// so overrun drops recycle slots promptly (in-flight slots ≤ ring +
/// TX backlog < pool).
pub fn throughput_profile(mut profile: TestbedProfile) -> TestbedProfile {
    profile.rx_queue_frames = 512;
    profile
}
