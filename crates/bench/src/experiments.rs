//! One entry point per table/figure of the paper's evaluation.
//!
//! Each function prints the same rows/series the paper reports and
//! writes a CSV under `target/experiments/`.  DESIGN.md carries the
//! experiment ↔ module index; EXPERIMENTS.md records paper-vs-measured.

use insane_fabric::{Technology, TestbedProfile};

use crate::latency::{insane_fast_breakdown, rtt_series, System};
use crate::mom_bench::{mom_goodput_gbps, mom_rtt_series, MomSystem};
use crate::report::{fmt_gbps, fmt_us, Table};
use crate::stats::us;
use crate::streaming_bench::{run_streaming, StreamVariant, RESOLUTIONS};
use crate::throughput::{goodput_gbps, insane_multi_sink_gbps, TputSystem};
use crate::{apps, iters, BenchError};

const PAYLOADS_SMALL: [usize; 3] = [64, 256, 1024];

fn profiles() -> [TestbedProfile; 2] {
    [TestbedProfile::local(), TestbedProfile::cloudlab()]
}

/// Table 1: the end-host networking technology comparison.
pub fn table1() {
    let mut table = Table::new(
        "Table 1 — end-host networking options",
        &[
            "Technology",
            "Kernel integration",
            "API",
            "Zero-copy",
            "CPU consumption",
            "Dedicated HW",
        ],
    );
    for tech in Technology::ALL {
        table.row(vec![
            tech.name().to_owned(),
            tech.kernel_integration().to_owned(),
            tech.api_name().to_owned(),
            if tech.zero_copy() { "Yes" } else { "No" }.to_owned(),
            tech.cpu_consumption().to_owned(),
            if tech.requires_dedicated_hardware() {
                "Yes"
            } else {
                "No"
            }
            .to_owned(),
        ]);
    }
    table.print();
    table.write_csv("table1_technologies");
}

/// Table 2: the two testbeds.
pub fn table2() {
    let mut table = Table::new(
        "Table 2 — testbeds",
        &["Testbed", "OS", "CPU", "RAM", "NIC", "Switch"],
    );
    for profile in profiles() {
        table.row(vec![
            profile.name.to_owned(),
            profile.os.to_owned(),
            profile.cpu.to_owned(),
            format!("{}GB", profile.ram_gb),
            profile.nic.to_owned(),
            profile
                .switch
                .map(|s| s.name.to_owned())
                .unwrap_or_else(|| "—".to_owned()),
        ]);
    }
    table.print();
    table.write_csv("table2_testbeds");
}

/// Table 3: LoC of the benchmarking application per interface.
///
/// # Errors
///
/// Fails if any of the three counted applications does not round-trip.
pub fn table3() -> Result<(), BenchError> {
    // Prove all three applications actually work before counting them.
    let profile = TestbedProfile::local();
    let runs = iters(3);
    let check = |name: &str, rtt_ns: &[u64]| {
        if rtt_ns.is_empty() {
            Err(BenchError::Other(format!("{name} app measured no RTTs")))
        } else {
            Ok(())
        }
    };
    check(
        "insane",
        &apps::insane_app::run(profile.clone(), insane_core::QosPolicy::fast(), 64, runs).rtt_ns,
    )?;
    check("udp", &apps::udp_app::run(profile.clone(), 64, runs).rtt_ns)?;
    check("dpdk", &apps::dpdk_app::run(profile, 64, runs).rtt_ns)?;

    let insane = apps::loc(apps::INSANE_APP_SRC);
    let udp = apps::loc(apps::UDP_APP_SRC);
    let dpdk = apps::loc(apps::DPDK_APP_SRC);
    let mut table = Table::new(
        "Table 3 — LoC of the benchmarking application",
        &["Interface", "Lines of Code (LoC)", "Increase"],
    );
    table.row(vec!["INSANE".into(), insane.to_string(), "—".into()]);
    table.row(vec![
        "UDP socket".into(),
        udp.to_string(),
        format!("+{}%", (udp * 100 / insane).saturating_sub(100)),
    ]);
    table.row(vec![
        "DPDK".into(),
        dpdk.to_string(),
        format!("+{}%", (dpdk * 100 / insane).saturating_sub(100)),
    ]);
    table.print();
    table.write_csv("table3_loc");
    Ok(())
}

/// Fig. 5: RTT for increasing payload sizes, both testbeds.
///
/// # Errors
///
/// Propagates failures from the systems under measurement.
pub fn fig5() -> Result<(), BenchError> {
    let systems = [
        System::RawDpdk,
        System::InsaneFast,
        System::InsaneSlow,
        System::UdpNonBlocking,
    ];
    let n = iters(300);
    let warmup = iters(30);
    for profile in profiles() {
        let mut table = Table::new(
            &format!("Fig. 5 — RTT vs payload ({})", profile.name),
            &[
                "System",
                "Payload (B)",
                "median (us)",
                "p25 (us)",
                "p75 (us)",
            ],
        );
        for system in systems {
            for payload in PAYLOADS_SMALL {
                let series = rtt_series(system, &profile, payload, n, warmup)?;
                table.row(vec![
                    system.label().to_owned(),
                    payload.to_string(),
                    fmt_us(series.median()),
                    fmt_us(series.p25()),
                    fmt_us(series.p75()),
                ]);
            }
        }
        table.print();
        table.write_csv(&format!(
            "fig5_rtt_{}",
            profile.name.to_lowercase().replace(' ', "_")
        ));
    }
    Ok(())
}

/// Fig. 6: INSANE fast latency breakdown at 64 B, both testbeds.
///
/// # Errors
///
/// Propagates failures from the fast-path round trips.
pub fn fig6() -> Result<(), BenchError> {
    let n = iters(300);
    let warmup = iters(30);
    let mut table = Table::new(
        "Fig. 6 — INSANE fast latency breakdown (64B, per round trip)",
        &[
            "Testbed",
            "Send (us)",
            "Receive (us)",
            "Data processing (us)",
            "Network (us)",
            "Total (us)",
        ],
    );
    for profile in profiles() {
        let acc = insane_fast_breakdown(&profile, 64, n, warmup)?;
        let (send, receive, processing, network) = acc.averages();
        table.row(vec![
            profile.name.to_owned(),
            fmt_us(send),
            fmt_us(receive),
            fmt_us(processing),
            fmt_us(network),
            fmt_us(send + receive + processing + network),
        ]);
    }
    table.print();
    table.write_csv("fig6_breakdown");
    Ok(())
}

/// Fig. 7: average RTT at 64 B across seven systems, both testbeds.
///
/// # Errors
///
/// Propagates failures from the systems under measurement.
pub fn fig7() -> Result<(), BenchError> {
    let systems = [
        System::UdpBlocking,
        System::UdpNonBlocking,
        System::Catnap,
        System::InsaneSlow,
        System::Catnip,
        System::InsaneFast,
        System::RawDpdk,
    ];
    let n = iters(300);
    let warmup = iters(30);
    for profile in profiles() {
        let mut table = Table::new(
            &format!("Fig. 7 — average RTT, 64B ({})", profile.name),
            &["System", "mean (us)", "median (us)", "p99 (us)"],
        );
        for system in systems {
            let series = rtt_series(system, &profile, 64, n, warmup)?;
            table.row(vec![
                system.label().to_owned(),
                format!("{:.2}", series.mean() / 1_000.0),
                fmt_us(series.median()),
                fmt_us(series.p99()),
            ]);
        }
        table.print();
        table.write_csv(&format!(
            "fig7_systems_{}",
            profile.name.to_lowercase().replace(' ', "_")
        ));
    }
    Ok(())
}

/// Fig. 8a: goodput vs payload size (local testbed, as in the paper).
///
/// # Errors
///
/// Propagates failures from the systems under measurement.
pub fn fig8a() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let systems = [
        TputSystem::Catnap,
        TputSystem::Catnip,
        TputSystem::KernelUdp,
        TputSystem::RawDpdk,
        TputSystem::InsaneSlow,
        TputSystem::InsaneFast,
    ];
    let payloads = [64usize, 256, 1024, 4096, 8192];
    let n = iters(6_000);
    let mut table = Table::new(
        "Fig. 8a — goodput vs payload (Local)",
        &["System", "Payload (B)", "Goodput (Gbps)"],
    );
    for system in systems {
        for payload in payloads {
            let gbps = goodput_gbps(system, &profile, payload, n)?;
            table.row(vec![
                system.label().to_owned(),
                payload.to_string(),
                fmt_gbps(gbps),
            ]);
        }
    }
    table.print();
    table.write_csv("fig8a_throughput");
    Ok(())
}

/// Fig. 8b: goodput vs number of co-located sinks (1 KB payloads).
///
/// # Errors
///
/// Propagates failures from the multi-sink pipeline.
pub fn fig8b() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let n = iters(6_000);
    let mut table = Table::new(
        "Fig. 8b — per-sink goodput vs number of sinks (1KB)",
        &["Sinks", "Goodput (Gbps)"],
    );
    for sinks in [1usize, 2, 4, 6, 8] {
        let gbps = insane_multi_sink_gbps(&profile, 1024, sinks, n)?;
        table.row(vec![sinks.to_string(), fmt_gbps(gbps)]);
    }
    table.print();
    table.write_csv("fig8b_sinks");
    Ok(())
}

/// Fig. 9a: MoM round-trip latency vs payload.
///
/// # Errors
///
/// Propagates failures from the MoM systems under measurement.
pub fn fig9a() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let systems = [
        MomSystem::LunarFast,
        MomSystem::LunarSlow,
        MomSystem::CycloneDds,
        MomSystem::ZeroMq,
    ];
    let n = iters(200);
    let warmup = iters(20);
    let mut table = Table::new(
        "Fig. 9a — MoM RTT vs payload (Local)",
        &[
            "System",
            "Payload (B)",
            "median (us)",
            "p25 (us)",
            "p75 (us)",
        ],
    );
    for system in systems {
        for payload in PAYLOADS_SMALL {
            let series = mom_rtt_series(system, &profile, payload, n, warmup)?;
            table.row(vec![
                system.label().to_owned(),
                payload.to_string(),
                fmt_us(series.median()),
                fmt_us(series.p25()),
                fmt_us(series.p75()),
            ]);
        }
    }
    table.print();
    table.write_csv("fig9a_mom_rtt");
    Ok(())
}

/// Fig. 9b: MoM goodput vs payload (ZeroMQ measured but flagged, as the
/// paper excluded it for instability).
///
/// # Errors
///
/// Propagates failures from the MoM systems under measurement.
pub fn fig9b() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let systems = [
        MomSystem::LunarFast,
        MomSystem::LunarSlow,
        MomSystem::CycloneDds,
    ];
    let n = iters(4_000);
    let mut table = Table::new(
        "Fig. 9b — MoM goodput vs payload (Local)",
        &["System", "Payload (B)", "Goodput (Gbps)"],
    );
    for system in systems {
        for payload in PAYLOADS_SMALL {
            let gbps = mom_goodput_gbps(system, &profile, payload, n)?;
            table.row(vec![
                system.label().to_owned(),
                payload.to_string(),
                fmt_gbps(gbps),
            ]);
        }
    }
    table.print();
    table.write_csv("fig9b_mom_tput");
    Ok(())
}

/// Table 4: sizes of the streamed images.
pub fn table4() {
    let mut table = Table::new(
        "Table 4 — streamed image sizes",
        &["Resolution", "Size (MB)"],
    );
    for (name, bytes) in RESOLUTIONS {
        table.row(vec![name.to_owned(), format!("{:.2}", bytes as f64 / 1e6)]);
    }
    table.print();
    table.write_csv("table4_images");
}

/// Fig. 11: streaming FPS and per-frame latency vs resolution.
///
/// # Errors
///
/// Propagates failures from the streaming variants.
pub fn fig11() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let variants = [
        StreamVariant::LunarFast,
        StreamVariant::LunarSlow,
        StreamVariant::Sendfile,
    ];
    let mut table = Table::new(
        "Fig. 11 — streaming FPS and per-frame latency (Local)",
        &["Variant", "Resolution", "FPS", "Latency (ms)"],
    );
    for variant in variants {
        for (name, bytes) in RESOLUTIONS {
            // Frame counts scale down with size to keep wall time sane.
            let frames = match bytes {
                b if b > 50_000_000 => iters(2),
                b if b > 10_000_000 => iters(3),
                _ => iters(5),
            };
            let result = run_streaming(variant, &profile, bytes, frames)?;
            table.row(vec![
                variant.label().to_owned(),
                name.to_owned(),
                format!("{:.1}", result.fps),
                format!("{:.2}", result.latency_ns as f64 / 1e6),
            ]);
        }
    }
    table.print();
    table.write_csv("fig11_streaming");
    Ok(())
}

/// Extra (non-paper): RTT of the XDP and RDMA datapaths, which the C
/// prototype had not integrated yet (§6).
///
/// # Errors
///
/// Propagates failures from the datapaths under measurement.
pub fn extra_xdp_rdma() -> Result<(), BenchError> {
    let profile = TestbedProfile::local();
    let n = iters(300);
    let warmup = iters(30);
    let mut table = Table::new(
        "Extra — INSANE over XDP and RDMA (Local, 64B)",
        &["System", "median (us)", "p99 (us)"],
    );
    for system in [
        System::InsaneSlow,
        System::InsaneXdp,
        System::InsaneFast,
        System::InsaneRdma,
    ] {
        let series = rtt_series(system, &profile, 64, n, warmup)?;
        table.row(vec![
            system.label().to_owned(),
            fmt_us(series.median()),
            fmt_us(series.p99()),
        ]);
    }
    table.print();
    table.write_csv("extra_xdp_rdma");

    // Sanity ordering: the QoS ladder must hold.
    let median = |s: System| -> Result<u64, BenchError> {
        Ok(rtt_series(s, &profile, 64, n / 2, warmup)?.median())
    };
    let udp = median(System::InsaneSlow)?;
    let xdp = median(System::InsaneXdp)?;
    let dpdk = median(System::InsaneFast)?;
    let rdma = median(System::InsaneRdma)?;
    println!(
        "ordering: rdma {:.2}us < dpdk {:.2}us < xdp {:.2}us < udp {:.2}us : {}",
        us(rdma),
        us(dpdk),
        us(xdp),
        us(udp),
        rdma < dpdk && dpdk < xdp && xdp < udp
    );
    Ok(())
}

/// Ablations called out in DESIGN.md §5.
///
/// # Errors
///
/// Propagates failures from the ablated pipelines.
pub fn ablations() -> Result<(), BenchError> {
    ablation_batching()?;
    ablation_mapping();
    ablation_tsn()
}

/// Opportunistic batching (burst 32) vs per-packet submission (burst 1).
fn ablation_batching() -> Result<(), BenchError> {
    use crate::setup::{throughput_config, throughput_profile, InsanePair};
    use insane_core::QosPolicy;
    let profile = throughput_profile(TestbedProfile::local());
    let n = iters(4_000);
    let mut table = Table::new(
        "Ablation — opportunistic batching (INSANE fast TX, 8KB)",
        &["Burst", "TX stage (us/msg)"],
    );
    for burst in [1usize, 4, 32] {
        let pair = InsanePair::with_config(
            profile.clone(),
            &[Technology::KernelUdp, Technology::Dpdk],
            |c| {
                let mut c = throughput_config(c);
                c.burst = burst;
                c
            },
        )?;
        let (source, _sinks) = pair.one_way(QosPolicy::fast(), 1)?;
        let msg = vec![0u8; 8192];
        let t0 = std::time::Instant::now();
        let mut sent = 0usize;
        while sent < n {
            match source.get_buffer(8192) {
                Ok(mut buf) => {
                    buf.copy_from_slice(&msg);
                    match source.emit(buf) {
                        Ok(_) => {
                            sent += 1;
                            if sent.is_multiple_of(burst.max(1)) {
                                pair.rt_a.poll_technology(Technology::Dpdk);
                            }
                        }
                        Err(_) => {
                            pair.rt_a.poll_technology(Technology::Dpdk);
                        }
                    }
                }
                Err(_) => {
                    pair.rt_a.poll_technology(Technology::Dpdk);
                }
            }
        }
        while pair.rt_a.poll_technology(Technology::Dpdk) {}
        let per_msg = t0.elapsed().as_nanos() as u64 / n as u64;
        table.row(vec![burst.to_string(), fmt_us(per_msg)]);
    }
    table.print();
    table.write_csv("ablation_batching");
    Ok(())
}

/// The QoS→technology mapping matrix (default strategy).
fn ablation_mapping() {
    use insane_core::qos::{DefaultMapping, MappingStrategy};
    use insane_core::QosPolicy;
    let mut table = Table::new(
        "Ablation — default QoS mapping matrix",
        &["Policy", "Available", "Mapped", "Fallback"],
    );
    let policies = [
        ("slow", QosPolicy::slow()),
        ("fast", QosPolicy::fast()),
        ("frugal", QosPolicy::frugal()),
    ];
    let availabilities: [(&str, Vec<Technology>); 4] = [
        ("udp only", vec![Technology::KernelUdp]),
        ("udp+xdp", vec![Technology::KernelUdp, Technology::Xdp]),
        (
            "udp+xdp+dpdk",
            vec![Technology::KernelUdp, Technology::Xdp, Technology::Dpdk],
        ),
        (
            "all (rdma)",
            vec![
                Technology::KernelUdp,
                Technology::Xdp,
                Technology::Dpdk,
                Technology::Rdma,
            ],
        ),
    ];
    for (pname, policy) in policies {
        for (aname, avail) in &availabilities {
            let mapped = DefaultMapping.map(&policy, avail);
            table.row(vec![
                pname.to_owned(),
                (*aname).to_owned(),
                mapped.technology.name().to_owned(),
                mapped.fallback.to_string(),
            ]);
        }
    }
    table.print();
    table.write_csv("ablation_mapping");
}

/// TSN gate behavior: a time-critical message always leaves inside its
/// window, bulk traffic waits.
fn ablation_tsn() -> Result<(), BenchError> {
    use insane_tsn::{GateControlList, Scheduler, TasScheduler, TrafficClass};
    use std::time::{Duration, Instant};
    let epoch = Instant::now();
    let gcl = GateControlList::exclusive_window(
        TrafficClass::TIME_CRITICAL,
        Duration::from_micros(200),
        Duration::from_millis(1),
        epoch,
    )
    .map_err(|e| BenchError::Other(format!("gate control list: {e}")))?;
    let mut scheduler = TasScheduler::new(gcl);
    for i in 0..64 {
        scheduler.enqueue(("bulk", i), TrafficClass::BEST_EFFORT, epoch);
    }
    scheduler.enqueue(("critical", 999), TrafficClass::TIME_CRITICAL, epoch);
    let mut out = Vec::new();
    // Probe inside the critical window: only the critical message leaves.
    scheduler.dequeue_ready(&mut out, 128, epoch + Duration::from_micros(50));
    let critical_only = out.len() == 1 && out[0].0 == "critical";
    let in_window = out.len();
    scheduler.dequeue_ready(&mut out, 128, epoch + Duration::from_micros(500));
    let mut table = Table::new(
        "Ablation — 802.1Qbv gating (64 bulk + 1 critical queued)",
        &["Probe", "Released", "Note"],
    );
    table.row(vec![
        "inside critical window".into(),
        in_window.to_string(),
        format!("critical-only: {critical_only}"),
    ]);
    table.row(vec![
        "after window".into(),
        (out.len() - in_window).to_string(),
        "bulk drains".into(),
    ]);
    table.print();
    table.write_csv("ablation_tsn");
    Ok(())
}
