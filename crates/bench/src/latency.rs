//! Round-trip-time measurement for every system in Fig. 5/7.
//!
//! Each measurement is a serial inline ping-pong (see the crate docs for
//! why that is exact on this one-core host): client sends, the harness
//! drives the receiving side until the echo returns, and the wall clock
//! between send and receipt is one RTT sample.

use std::time::Instant;

use insane_core::{ConsumeMode, InsaneError, QosPolicy, Technology};
use insane_demikernel::{Backend, DemiEvent, Demikernel};
use insane_fabric::devices::{DpdkPort, RecvMode, SimUdpSocket};
use insane_fabric::{Endpoint, Fabric, FabricError, TestbedProfile};

use crate::setup::InsanePair;
use crate::stats::Series;
use crate::BenchError;

/// The systems compared in the latency experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// UDP socket with a blocking receive.
    UdpBlocking,
    /// UDP socket polled without blocking.
    UdpNonBlocking,
    /// Native DPDK (mempool + burst I/O, no middleware).
    RawDpdk,
    /// Demikernel over kernel sockets.
    Catnap,
    /// Demikernel over DPDK.
    Catnip,
    /// INSANE, datapath-acceleration QoS = slow (kernel UDP).
    InsaneSlow,
    /// INSANE, datapath-acceleration QoS = fast (DPDK).
    InsaneFast,
    /// INSANE mapped to XDP (accelerated + resource-constrained QoS).
    InsaneXdp,
    /// INSANE mapped to RDMA (accelerated QoS with RDMA hardware).
    InsaneRdma,
}

impl System {
    /// Label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            System::UdpBlocking => "Blocking UDP Socket",
            System::UdpNonBlocking => "Non-Blocking UDP Socket",
            System::RawDpdk => "Raw DPDK",
            System::Catnap => "Catnap UDP",
            System::Catnip => "Catnip UDP",
            System::InsaneSlow => "INSANE slow",
            System::InsaneFast => "INSANE fast",
            System::InsaneXdp => "INSANE xdp",
            System::InsaneRdma => "INSANE rdma",
        }
    }
}

/// Measures an RTT series of `iters` samples (after `warmup` discarded
/// rounds) for `payload`-byte messages on `profile`.
///
/// # Errors
///
/// Propagates failures from the system under measurement.
pub fn rtt_series(
    system: System,
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    match system {
        System::UdpBlocking => udp_rtt(profile, payload, iters, warmup, true),
        System::UdpNonBlocking => udp_rtt(profile, payload, iters, warmup, false),
        System::RawDpdk => dpdk_rtt(profile, payload, iters, warmup),
        System::Catnap => demi_rtt(Backend::Catnap, profile, payload, iters, warmup),
        System::Catnip => demi_rtt(Backend::Catnip, profile, payload, iters, warmup),
        System::InsaneSlow => insane_rtt(
            profile,
            &[Technology::KernelUdp, Technology::Dpdk],
            QosPolicy::slow(),
            Technology::KernelUdp,
            payload,
            iters,
            warmup,
        ),
        System::InsaneFast => insane_rtt(
            profile,
            &[Technology::KernelUdp, Technology::Dpdk],
            QosPolicy::fast(),
            Technology::Dpdk,
            payload,
            iters,
            warmup,
        ),
        System::InsaneXdp => insane_rtt(
            profile,
            &[Technology::KernelUdp, Technology::Xdp],
            QosPolicy::frugal(),
            Technology::Xdp,
            payload,
            iters,
            warmup,
        ),
        System::InsaneRdma => insane_rtt(
            profile,
            &[Technology::KernelUdp, Technology::Rdma],
            QosPolicy::fast(),
            Technology::Rdma,
            payload,
            iters,
            warmup,
        ),
    }
}

fn udp_rtt(
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
    blocking: bool,
) -> Result<Series, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let sa = SimUdpSocket::bind(&fabric, a, 9000)?;
    let sb = SimUdpSocket::bind(&fabric, b, 9000)?;
    sa.set_mtu(SimUdpSocket::JUMBO_MTU);
    sb.set_mtu(SimUdpSocket::JUMBO_MTU);
    let msg = vec![0xA5u8; payload];
    let recv = |socket: &SimUdpSocket| -> Result<Vec<u8>, BenchError> {
        if blocking {
            Ok(socket.recv_blocking_emulated()?.payload)
        } else {
            loop {
                match socket.recv(RecvMode::NonBlocking) {
                    Ok(d) => break Ok(d.payload),
                    Err(FabricError::WouldBlock) => core::hint::spin_loop(),
                    Err(e) => break Err(e.into()),
                }
            }
        }
    };
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        sa.send_to(&msg, sb.local_addr())?;
        let ping = recv(&sb)?;
        sb.send_to(&ping, sa.local_addr())?;
        let _pong = recv(&sa)?;
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

fn dpdk_rtt(
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let pa = DpdkPort::open(&fabric, a, 0, 256)?;
    let pb = DpdkPort::open(&fabric, b, 0, 256)?;
    let msg = vec![0xA5u8; payload];
    let mut rx = Vec::with_capacity(4);
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        let mut mbuf = pa.alloc_mbuf(payload)?;
        mbuf.copy_from_slice(&msg);
        pa.tx_burst(pb.local_addr(), [mbuf])?;
        while pb.rx_burst(&mut rx, 1) == 0 {}
        let ping = rx.pop().ok_or_else(|| {
            BenchError::Other("rx_burst reported a packet it did not deliver".into())
        })?;
        pb.tx_forward(pa.local_addr(), ping)?;
        while pa.rx_burst(&mut rx, 1) == 0 {}
        rx.clear();
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

fn demi_rtt(
    backend: Backend,
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let fabric = Fabric::new(profile.clone());
    let a = fabric.add_host("a");
    let b = fabric.add_host("b");
    let mut da = Demikernel::new(backend, &fabric, a)?;
    let mut db = Demikernel::new(backend, &fabric, b)?;
    let qa = da.socket()?;
    let qb = db.socket()?;
    da.bind(qa, 9000)?;
    db.bind(qb, 9000)?;
    let ea = Endpoint {
        host: a,
        port: 9000,
    };
    let eb = Endpoint {
        host: b,
        port: 9000,
    };
    let msg = vec![0xA5u8; payload];
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        da.push_to(qa, &msg, eb)?;
        let pop = db.pop(qb)?;
        let DemiEvent::Popped { bytes, .. } = db.wait(pop, None)? else {
            return Err(BenchError::Other("pop token completed as Pushed".into()));
        };
        db.push_to(qb, &bytes, ea)?;
        let pop = da.pop(qa)?;
        let _ = da.wait(pop, None)?;
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

fn insane_rtt(
    profile: &TestbedProfile,
    techs: &[Technology],
    qos: QosPolicy,
    hot_path: Technology,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<Series, BenchError> {
    let pair = InsanePair::new(profile.clone(), techs)?;
    let (ping_source, ping_sink, pong_source, pong_sink) = pair.ping_pong(qos)?;
    let msg = vec![0xA5u8; payload];
    let mut series = Series::new();
    for i in 0..iters + warmup {
        let t0 = Instant::now();
        let mut buf = ping_source.get_buffer(payload)?;
        buf.copy_from_slice(&msg);
        ping_source.emit(buf)?;
        // Phase drive: one TX-only poll of the sender runtime moves the
        // emitted token all the way to the device (drain → schedule →
        // send happen in one iteration), then the receiving runtime is
        // polled until the message lands — each phase is exactly what the
        // responsible host's dedicated polling thread executes on the
        // critical path (its receive polls run concurrently on real
        // hardware and are deliberately not serialized into the sample).
        pair.rt_a.poll_transmit(hot_path);
        let ping = loop {
            pair.rt_b.poll_technology(hot_path);
            match ping_sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        let mut echo = pong_source.get_buffer(ping.len())?;
        echo.copy_from_slice(&ping);
        drop(ping);
        pong_source.emit(echo)?;
        pair.rt_b.poll_transmit(hot_path);
        let pong = loop {
            pair.rt_a.poll_technology(hot_path);
            match pong_sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        drop(pong);
        if i >= warmup {
            series.push(t0.elapsed().as_nanos() as u64);
        }
    }
    Ok(series)
}

/// Runs an INSANE-fast ping-pong collecting the Fig. 6 latency-breakdown
/// components (summed over both directions of each round trip).
///
/// # Errors
///
/// Propagates middleware failures.
pub fn insane_fast_breakdown(
    profile: &TestbedProfile,
    payload: usize,
    iters: usize,
    warmup: usize,
) -> Result<BreakdownAverages, BenchError> {
    let pair = InsanePair::new(profile.clone(), &[Technology::KernelUdp, Technology::Dpdk])?;
    let (ping_source, ping_sink, pong_source, pong_sink) = pair.ping_pong(QosPolicy::fast())?;
    let msg = vec![0xA5u8; payload];
    let mut acc = BreakdownAverages::default();
    for i in 0..iters + warmup {
        let mut buf = ping_source.get_buffer(payload)?;
        buf.copy_from_slice(&msg);
        ping_source.emit(buf)?;
        pair.rt_a.poll_transmit(Technology::Dpdk);
        let ping = loop {
            pair.rt_b.poll_technology(Technology::Dpdk);
            match ping_sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        let ping_bd = ping.breakdown();
        let mut echo = pong_source.get_buffer(ping.len())?;
        echo.copy_from_slice(&ping);
        drop(ping);
        pong_source.emit(echo)?;
        pair.rt_b.poll_transmit(Technology::Dpdk);
        let pong = loop {
            pair.rt_a.poll_technology(Technology::Dpdk);
            match pong_sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        let pong_bd = pong.breakdown();
        drop(pong);
        if i >= warmup {
            acc.samples += 1;
            acc.send_ns += ping_bd.send_ns + pong_bd.send_ns;
            acc.network_ns += ping_bd.network_ns + pong_bd.network_ns;
            acc.receive_ns += ping_bd.receive_ns + pong_bd.receive_ns;
            acc.processing_ns += ping_bd.processing_ns + pong_bd.processing_ns;
        }
    }
    Ok(acc)
}

/// Accumulated Fig. 6 components (totals; divide by `samples`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BreakdownAverages {
    /// Number of round trips accumulated.
    pub samples: u64,
    /// Total send-component nanoseconds.
    pub send_ns: u64,
    /// Total network-component nanoseconds.
    pub network_ns: u64,
    /// Total receive-component nanoseconds.
    pub receive_ns: u64,
    /// Total data-processing-component nanoseconds.
    pub processing_ns: u64,
}

impl BreakdownAverages {
    /// Per-round-trip averages `(send, receive, processing, network)` in
    /// nanoseconds.
    pub fn averages(&self) -> (u64, u64, u64, u64) {
        if self.samples == 0 {
            return (0, 0, 0, 0);
        }
        (
            self.send_ns / self.samples,
            self.receive_ns / self.samples,
            self.processing_ns / self.samples,
            self.network_ns / self.samples,
        )
    }
}
