//! Lock-free free-list over `u32` indices (Treiber stack with an ABA tag).
//!
//! The INSANE memory manager stores its pool of free slot ids here: slots
//! are pushed back by whichever thread releases a buffer and popped by
//! whichever application thread asks for one (`get_buffer`, paper Fig. 2),
//! so the structure must be multi-producer/multi-consumer.  Because entries
//! are indices rather than pointers, the classic ABA hazard is defeated with
//! a 32-bit tag packed next to the 32-bit head index in one `AtomicU64`.

use core::fmt;

use crate::sync::{AtomicU32, AtomicU64, Ordering};

const NIL: u32 = u32::MAX;

/// A lock-free stack of `u32` indices in `0..capacity`.
///
/// # Examples
///
/// ```
/// use insane_queues::FreeStack;
///
/// let stack = FreeStack::full(4); // starts holding 0,1,2,3
/// let a = stack.pop().unwrap();
/// stack.push(a);
/// assert_eq!(stack.len(), 4);
/// ```
pub struct FreeStack {
    /// `next[i]` is the index below `i` in the stack, or `NIL`.
    next: Box<[AtomicU32]>,
    /// Upper 32 bits: ABA tag; lower 32 bits: head index or `NIL`.
    head: AtomicU64,
    len: AtomicU32,
}

impl fmt::Debug for FreeStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FreeStack")
            .field("capacity", &self.next.len())
            .field("len", &self.len())
            .finish()
    }
}

fn pack(tag: u32, index: u32) -> u64 {
    ((tag as u64) << 32) | index as u64
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl FreeStack {
    /// Creates an empty stack able to hold indices in `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity >= u32::MAX` (the maximum index is reserved).
    pub fn new(capacity: usize) -> Self {
        assert!((capacity as u64) < u32::MAX as u64, "capacity too large");
        let next = (0..capacity)
            .map(|_| AtomicU32::new(NIL))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            next,
            head: AtomicU64::new(pack(0, NIL)),
            len: AtomicU32::new(0),
        }
    }

    /// Creates a stack pre-filled with every index in `0..capacity`, popping
    /// in ascending order (`0` first).
    pub fn full(capacity: usize) -> Self {
        let stack = Self::new(capacity);
        // Push in reverse so that index 0 ends on top.
        for i in (0..capacity as u32).rev() {
            stack.push(i);
        }
        stack
    }

    /// Pushes `index` onto the stack.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.  Pushing an index that is already
    /// on the stack is a logic error the stack cannot detect; the memory
    /// manager layers generation tags on top to catch double-release.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- the documented range assert is the bound proof for the index below
    pub fn push(&self, index: u32) {
        assert!((index as usize) < self.next.len(), "index out of range");
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            self.next[index as usize].store(top, Ordering::Relaxed);
            let new = pack(tag.wrapping_add(1), index);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => head = actual,
            }
        }
    }

    /// Pops the most recently pushed index, or `None` when empty.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- every stacked index passed the range assert in push
    pub fn pop(&self) -> Option<u32> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            if top == NIL {
                return None;
            }
            let below = self.next[top as usize].load(Ordering::Relaxed);
            let new = pack(tag.wrapping_add(1), below);
            match self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return Some(top);
                }
                Err(actual) => head = actual,
            }
        }
    }

    /// Number of indices currently on the stack (racy snapshot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// Whether the stack is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum index count this stack was created for.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn full_pops_ascending() {
        let s = FreeStack::full(4);
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn lifo_order() {
        let s = FreeStack::new(8);
        s.push(3);
        s.push(5);
        assert_eq!(s.pop(), Some(5));
        assert_eq!(s.pop(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let s = FreeStack::new(2);
        s.push(2);
    }

    #[test]
    fn empty_and_len_track_operations() {
        let s = FreeStack::new(3);
        assert!(s.is_empty());
        s.push(0);
        s.push(1);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn concurrent_churn_never_duplicates_indices() {
        const THREADS: usize = 8;
        const ROUNDS: usize = if cfg!(miri) { 200 } else { 10_000 };
        let stack = Arc::new(FreeStack::full(64));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let stack = Arc::clone(&stack);
            handles.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for round in 0..ROUNDS {
                    if round % 3 == 0 || held.is_empty() {
                        if let Some(i) = stack.pop() {
                            held.push(i);
                        }
                    } else {
                        stack.push(held.pop().unwrap());
                    }
                }
                held
            }));
        }
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let Some(i) = stack.pop() {
            all.push(i);
        }
        // Every index accounted for exactly once.
        assert_eq!(all.len(), 64);
        let unique: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(unique.len(), 64);
        assert!(all.iter().all(|&i| i < 64));
    }
}
