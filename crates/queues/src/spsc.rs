//! Bounded single-producer/single-consumer ring buffer.
//!
//! This is the queue the INSANE client library uses to hand slot-id tokens
//! to the runtime (TX queue) and the runtime uses to hand received tokens
//! back to a sink (RX queue); see Figure 4 of the paper.  The design follows
//! the classic Lamport ring with cached opposite indices, the same structure
//! the DPDK `rte_ring` and similar HPC queues use: a producer-owned tail, a
//! consumer-owned head, and a power-of-two slot array so index wrapping is a
//! mask.
//!
//! All shared state goes through [`crate::sync`], so the ring can be model
//! checked with loom (`RUSTFLAGS="--cfg loom" cargo test -p insane-queues
//! --test loom`); see DESIGN.md §7.

use core::cell::Cell;
use core::fmt;
use core::mem::MaybeUninit;

use crate::sync::{Arc, AtomicBool, AtomicUsize, Ordering, UnsafeCell};
use crate::CachePadded;

/// Error returned by [`Sender::push`] when the ring is full.
///
/// The rejected value is handed back so the caller can retry or drop it.
#[derive(Debug, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue is full")
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// Error describing why a [`Receiver::try_pop`] yielded no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue is currently empty but the producer is still alive.
    Empty,
    /// The queue is empty and the producer has been dropped: no further
    /// values can ever arrive.
    Disconnected,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::Empty => write!(f, "queue is empty"),
            PopError::Disconnected => write!(f, "queue is empty and the producer disconnected"),
        }
    }
}

impl std::error::Error for PopError {}

struct Ring<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next position the producer will write (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    /// Next position the consumer will read (monotonically increasing).
    head: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: the ring hands each value from exactly one producer thread to
// exactly one consumer thread; the head/tail atomics provide the necessary
// happens-before edges (release on publish, acquire on observe), so a slot
// is never accessed concurrently from both sides.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: as above — shared references to the ring only permit operations
// whose slot accesses are serialized by the head/tail protocol.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &(self.mask + 1))
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain any values still in flight so their destructors run.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for pos in head..tail {
            // SAFETY: positions in [head, tail) hold initialized values and
            // Drop has exclusive access to the ring.
            self.buffer[pos & self.mask].with_mut(|p| unsafe { (*p).assume_init_drop() });
        }
    }
}

/// Producer half of an SPSC ring created by [`channel`].
///
/// `Sender` is `Send` but not `Sync`: exactly one thread may produce.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
    /// Producer-local cache of the consumer head, refreshed only when the
    /// ring looks full; avoids ping-ponging the head cache line.  A plain
    /// `Cell` suffices because the producer half is `!Sync`.
    cached_head: Cell<usize>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").field("ring", &self.ring).finish()
    }
}

/// Consumer half of an SPSC ring created by [`channel`].
///
/// `Receiver` is `Send` but not `Sync`: exactly one thread may consume.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    /// Consumer-local cache of the producer tail (`Cell`: the consumer
    /// half is `!Sync`).
    cached_tail: Cell<usize>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("ring", &self.ring)
            .finish()
    }
}

/// Creates a bounded SPSC channel able to hold at least `capacity` items.
///
/// The actual capacity is `capacity` rounded up to a power of two (minimum
/// 2) so that wrapping is a mask operation, mirroring the DPDK ring.
///
/// # Panics
///
/// Panics if `capacity` is 0.
///
/// # Examples
///
/// ```
/// let (tx, rx) = insane_queues::spsc::channel::<u32>(4);
/// tx.push(1).unwrap();
/// tx.push(2).unwrap();
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc capacity must be non-zero");
    let cap = capacity.next_power_of_two().max(2);
    let buffer = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buffer,
        mask: cap - 1,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Sender {
            ring: Arc::clone(&ring),
            cached_head: Cell::new(0),
        },
        Receiver {
            ring,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T> Sender<T> {
    /// Attempts to enqueue `value` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying `value` back if the ring is full.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- `tail & mask` cannot exceed the power-of-two ring length
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head.get()) > ring.mask {
            self.cached_head.set(ring.head.load(Ordering::Acquire));
            if tail.wrapping_sub(self.cached_head.get()) > ring.mask {
                return Err(PushError(value));
            }
        }
        // SAFETY: the slot at `tail` is not visible to the consumer until we
        // publish the new tail below, and the fullness check above proves
        // the consumer has vacated it — so this write cannot race.
        ring.buffer[tail & ring.mask].with_mut(|p| unsafe { (*p).write(value) });
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued (racy snapshot — only advisory).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no items (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is currently full (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() > self.ring.mask
    }

    /// Total number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Whether the consumer half is still alive.
    pub fn receiver_alive(&self) -> bool {
        self.ring.consumer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest value, or `None` when the ring is empty.
    // insane-lint: hot-path-root
    pub fn pop(&self) -> Option<T> {
        self.try_pop().ok()
    }

    /// Dequeues the oldest value, distinguishing *empty* from
    /// *empty-and-disconnected*.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] when there is nothing to read right now;
    /// [`PopError::Disconnected`] when additionally the sender is gone.
    // insane-lint: hot-path-root
    pub fn try_pop(&self) -> Result<T, PopError> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail.set(ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return if ring.producer_alive.load(Ordering::Acquire) {
                    Err(PopError::Empty)
                } else {
                    // Re-check: the producer may have pushed between our tail
                    // read and its death.
                    self.cached_tail.set(ring.tail.load(Ordering::Acquire));
                    if head == self.cached_tail.get() {
                        Err(PopError::Disconnected)
                    } else {
                        Ok(self.take_at(head))
                    }
                };
            }
        }
        Ok(self.take_at(head))
    }

    // insane-lint: allow-fn(hot-path-panic) -- `head & mask` cannot exceed the power-of-two ring length
    fn take_at(&self, head: usize) -> T {
        let ring = &*self.ring;
        // SAFETY: positions below the observed tail hold initialized values
        // and the producer will not reuse this slot until we bump `head`,
        // so this consuming read is the only access.
        let value = ring.buffer[head & ring.mask].with(|p| unsafe { (*p).assume_init_read() });
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Pops up to `max` items into `out`, returning how many were moved.
    ///
    /// This is the burst-dequeue the runtime polling thread uses to drain a
    /// TX token queue in one pass (opportunistic batching, paper §6.2).
    // insane-lint: hot-path-root
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            match self.pop() {
                Some(value) => {
                    out.push(value);
                    moved += 1;
                }
                None => break,
            }
        }
        moved
    }

    /// Number of items currently queued (racy snapshot — only advisory).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no items (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Whether the producer half is still alive.
    pub fn sender_alive(&self) -> bool {
        self.ring.producer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = channel::<u8>(1);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = channel::<u8>(0);
    }

    #[test]
    fn push_pop_roundtrip_in_order() {
        let (tx, rx) = channel(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn push_to_full_ring_returns_value() {
        let (tx, _rx) = channel(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(PushError(3)));
        assert!(tx.is_full());
    }

    #[test]
    fn pop_after_sender_drop_reports_disconnected() {
        let (tx, rx) = channel(4);
        tx.push(9u8).unwrap();
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(9));
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn pop_on_empty_live_channel_reports_empty() {
        let (tx, rx) = channel::<u8>(4);
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
        drop(tx);
    }

    #[test]
    fn sender_observes_receiver_drop() {
        let (tx, rx) = channel::<u8>(4);
        assert!(tx.receiver_alive());
        drop(rx);
        assert!(!tx.receiver_alive());
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let (tx, rx) = channel(4);
        let mut expected = 0u64;
        for round in 0..100u64 {
            tx.push(round * 2).unwrap();
            tx.push(round * 2 + 1).unwrap();
            assert_eq!(rx.pop(), Some(expected));
            expected += 1;
            assert_eq!(rx.pop(), Some(expected));
            expected += 1;
        }
    }

    #[test]
    fn pop_burst_drains_up_to_max() {
        let (tx, rx) = channel(16);
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_burst(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.pop_burst(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn in_flight_values_are_dropped_with_ring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel(8);
        for _ in 0..5 {
            tx.push(Probe).unwrap();
        }
        drop(rx.pop()); // one popped and dropped by us
        drop(tx);
        drop(rx); // ring drop must release the remaining four
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn two_thread_stress_preserves_order_and_content() {
        const N: u64 = if cfg!(miri) { 500 } else { 100_000 };
        let (tx, rx) = channel(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, next);
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
