//! Concurrency-primitive shim: real `std`/`core` types in normal builds,
//! `loom`-instrumented types under `RUSTFLAGS="--cfg loom"`.
//!
//! Every atomic and every interior-mutability cell on the lock-free data
//! path goes through this module so the loom model checker can explore
//! interleavings and detect illegal concurrent slot access (DESIGN.md §7).
//! `insane-memory` reuses the same shim via this re-export, keeping the
//! two `unsafe` crates on one set of instrumented primitives.
//!
//! The `UnsafeCell` here mirrors loom's closure-based API (`with` for
//! shared access, `with_mut` for exclusive access) instead of the raw
//! `get()` pointer escape: in loom builds the closures are the probes
//! that catch protocol violations, in normal builds they compile to the
//! plain pointer access.

#[cfg(loom)]
pub use loom::{
    cell::UnsafeCell,
    hint,
    sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering},
    sync::Arc,
    thread,
};

#[cfg(not(loom))]
pub use core::sync::atomic::{
    fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
#[cfg(not(loom))]
pub use std::sync::Arc;
#[cfg(not(loom))]
pub use std::thread;

#[cfg(not(loom))]
pub mod hint {
    //! Spin-loop hint matching `loom::hint`.

    /// Busy-wait hint to the processor.
    #[inline(always)]
    pub fn spin_loop() {
        core::hint::spin_loop();
    }
}

/// Interior-mutability cell with loom's closure-based access API.
///
/// In normal builds this is a zero-cost wrapper over
/// [`core::cell::UnsafeCell`]; under `cfg(loom)` the loom version is used
/// instead, which instruments every access.
#[cfg(not(loom))]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(core::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    /// Wraps `data`.
    pub const fn new(data: T) -> Self {
        Self(core::cell::UnsafeCell::new(data))
    }

    /// Shared access to the cell contents.
    ///
    /// The *caller* must guarantee no concurrent exclusive access; the
    /// loom build checks that guarantee at model-run time.
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Exclusive access to the cell contents.
    ///
    /// The *caller* must guarantee no concurrent access of any kind; the
    /// loom build checks that guarantee at model-run time.
    #[inline(always)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_cell_with_and_with_mut_round_trip() {
        let cell = UnsafeCell::new(5u64);
        // SAFETY: single-threaded test — no concurrent access exists.
        cell.with_mut(|p| unsafe { *p += 1 });
        // SAFETY: as above.
        assert_eq!(cell.with(|p| unsafe { *p }), 6);
    }
}
