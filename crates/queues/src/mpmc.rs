//! Bounded multi-producer/multi-consumer array queue.
//!
//! Vyukov-style design: every slot carries a sequence number that encodes
//! whether it is ready for a producer or a consumer on the current lap.
//! INSANE uses it wherever more than one thread feeds a queue — e.g. many
//! application sources handing tokens to one shared polling thread when the
//! runtime runs in its resource-constrained configuration (paper §5.3), and
//! for the control-plane mailbox.
//!
//! All shared state goes through [`crate::sync`], so the queue can be model
//! checked with loom (`RUSTFLAGS="--cfg loom" cargo test -p insane-queues
//! --test loom`); see DESIGN.md §7.

use core::fmt;
use core::mem::MaybeUninit;

use crate::sync::{AtomicUsize, Ordering, UnsafeCell};
use crate::CachePadded;

struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC queue.
///
/// # Examples
///
/// ```
/// use insane_queues::MpmcQueue;
///
/// let q = MpmcQueue::new(4);
/// q.push("token").unwrap();
/// assert_eq!(q.pop(), Some("token"));
/// ```
pub struct MpmcQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slots are handed off between threads with acquire/release on the
// per-slot sequence numbers; a value is only ever written by the one
// producer that won the CAS on `enqueue_pos` and read by the one consumer
// that won the CAS on `dequeue_pos`, so no slot is accessed concurrently.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
// SAFETY: as above — all shared-reference operations serialize their slot
// accesses through the sequence-number protocol.
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> fmt::Debug for MpmcQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpmcQueue")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.len())
            .finish()
    }
}

impl<T> MpmcQueue<T> {
    /// Creates a queue with at least `capacity` slots (rounded up to a power
    /// of two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mpmc capacity must be non-zero");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Attempts to enqueue `value`.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the queue is full.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- `pos & mask` cannot exceed the power-of-two slot count
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives us exclusive write
                        // access to this slot for this lap; the consumer
                        // cannot touch it until the sequence store below.
                        slot.value.with_mut(|p| unsafe { (*p).write(value) });
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return Err(value);
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` when empty.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- `pos & mask` cannot exceed the power-of-two slot count
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives us exclusive access
                        // to the initialized value in this slot; producers
                        // cannot reuse it until the sequence store below.
                        let value = slot.value.with(|p| unsafe { (*p).assume_init_read() });
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops up to `max` items into `out`; returns how many were moved.
    // insane-lint: hot-path-root
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut moved = 0;
        while moved < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    moved += 1;
                }
                None => break,
            }
        }
        moved
    }

    /// Number of queued items (racy snapshot — only advisory).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpmcQueue::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99));
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reuse_across_laps() {
        let q = MpmcQueue::new(2);
        for lap in 0..50 {
            q.push(lap).unwrap();
            q.push(lap + 1000).unwrap();
            assert_eq!(q.pop(), Some(lap));
            assert_eq!(q.pop(), Some(lap + 1000));
        }
    }

    #[test]
    fn burst_pop() {
        let q = MpmcQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_burst(&mut out, 4), 4);
        assert_eq!(q.pop_burst(&mut out, 4), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn values_left_in_queue_are_dropped() {
        use std::sync::atomic::Ordering;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MpmcQueue::new(4);
            q.push(Probe).unwrap();
            q.push(Probe).unwrap();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn multi_producer_multi_consumer_accounting() {
        use std::sync::atomic::Ordering;
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = if cfg!(miri) { 100 } else { 20_000 };
        let q = Arc::new(MpmcQueue::<usize>::new(256));
        let consumed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || loop {
                if consumed.load(Ordering::SeqCst) >= PRODUCERS * PER_PRODUCER {
                    break;
                }
                if let Some(v) = q.pop() {
                    sum.fetch_add(v, Ordering::SeqCst);
                    consumed.fetch_add(1, Ordering::SeqCst);
                } else {
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(consumed.load(Ordering::SeqCst), n);
        assert_eq!(sum.load(Ordering::SeqCst), n * (n - 1) / 2);
    }
}
