//! Bounded lock-free queues for the INSANE middleware.
//!
//! The INSANE runtime and the client library live on different threads and
//! exchange *tokens* (slot ids) rather than payload bytes, following the
//! zero-copy design of the paper (§5.3).  The queues in this crate implement
//! that exchange without locks on the critical path:
//!
//! * [`spsc`] — a bounded single-producer/single-consumer ring in the style
//!   of the DPDK ring library, used for the per-application TX and RX token
//!   queues.
//! * [`mpmc`] — a bounded multi-producer/multi-consumer array queue (Vyukov
//!   sequence-number design), used where several application threads feed a
//!   single runtime polling thread.
//! * [`free_stack`] — a lock-free Treiber stack over `u32` indices with an
//!   ABA tag, used by the memory manager as its free-slot list.
//! * [`snapshot`] — a published-snapshot cell (atomic `Arc` pointer swap)
//!   for read-mostly control state: writers publish a complete new value,
//!   hot-path readers pay one atomic load per poll iteration.
//!
//! All queues are fixed-capacity: the middleware never allocates on the data
//! path after startup.
//!
//! Every atomic and interior-mutability cell goes through the [`sync`]
//! shim, which resolves to [`loom`](https://docs.rs/loom) instrumented
//! types under `RUSTFLAGS="--cfg loom"` and to the real `core`/`std`
//! primitives otherwise.  The loom model-checking suite lives in
//! `tests/loom.rs`; see DESIGN.md §7 for the full verification matrix.
//!
//! # Examples
//!
//! ```
//! use insane_queues::spsc;
//!
//! let (tx, rx) = spsc::channel::<u64>(8);
//! tx.push(7).unwrap();
//! assert_eq!(rx.pop(), Some(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod free_stack;
pub mod mpmc;
#[cfg(not(loom))]
pub mod shm_spsc;
pub mod snapshot;
pub mod spsc;
#[doc(hidden)]
pub mod sync;

pub use free_stack::FreeStack;
pub use mpmc::MpmcQueue;
#[cfg(not(loom))]
pub use shm_spsc::{ring_bytes, Descriptor, ShmConsumer, ShmProducer};
pub use snapshot::SnapshotCell;
pub use spsc::{channel, PopError, PushError, Receiver, Sender};

/// Pads and aligns a value to a cache line (64 bytes on the targets we care
/// about) so that hot atomics owned by different threads do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the wrapped value, consuming the padding wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_cache_line_aligned() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 64);
    }

    #[test]
    fn cache_padded_derefs_to_inner() {
        let mut padded = CachePadded::new(41u32);
        *padded += 1;
        assert_eq!(*padded, 42);
        assert_eq!(padded.into_inner(), 42);
    }
}
