//! Offset-addressed SPSC descriptor ring for shared-memory segments.
//!
//! This is the [`spsc`](crate::spsc) ring re-expressed for the
//! cross-process datapath: instead of boxed `UnsafeCell` slots owned by
//! a Rust allocation, the ring's *entire* state — producer tail,
//! consumer head, and the descriptor array — lives at fixed offsets
//! inside a caller-provided byte region (a window of a shared-memory
//! segment, mapped at a different virtual address in each process).
//!
//! Entries are fixed 16-byte [`Descriptor`]s (two `u64` words), which is
//! exactly what a [`SlotToken`](../../insane_memory/struct.SlotToken.html)
//! encodes to on the wire: `word0 = generation << 32 | index`,
//! `word1 = stream << 32 | len`.  Only position-independent words ever
//! enter the ring — never pointers — so the same bytes are valid in
//! every attached process.
//!
//! Memory layout of a ring region (`ring_bytes(capacity)` bytes):
//!
//! ```text
//! offset 0    tail  (AtomicU64, producer-published, own cache line)
//! offset 64   head  (AtomicU64, consumer-published, own cache line)
//! offset 128  entries (capacity × 16 bytes)
//! ```
//!
//! The algorithm is the same Lamport ring with cached opposite indices
//! as the in-process `spsc` module (DPDK style): the producer re-reads
//! `head` only when the ring *looks* full, the consumer re-reads `tail`
//! only when it *looks* empty, so the steady-state cost is one shared
//! atomic store per operation.  Indices are free-running `u64`s, masked
//! on access; capacity must be a power of two.
//!
//! Atomics here are plain `core::sync::atomic` types on purpose: a
//! shared mapping cannot hold loom-instrumented cells, so this module is
//! compiled out under `cfg(loom)` (the in-process `spsc` ring, which
//! shares the algorithm, is the loom-checked variant).

use core::cell::Cell;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One ring entry: two position-independent words.
pub type Descriptor = [u64; 2];

const TAIL_OFF: usize = 0;
const HEAD_OFF: usize = 64;
const ENTRIES_OFF: usize = 128;
const ENTRY_BYTES: usize = 16;

/// Bytes a segment must provide for a ring of `capacity` descriptors.
pub const fn ring_bytes(capacity: usize) -> usize {
    ENTRIES_OFF + capacity * ENTRY_BYTES
}

/// Shared plumbing of the two endpoint handles: the region base, the
/// index mask, and an optional keep-alive that owns the mapping.
struct RingRef {
    base: *mut u8,
    mask: u64,
    _keep: Option<Arc<dyn core::any::Any + Send + Sync>>,
}

// SAFETY: the handle only dereferences `base` through the SPSC
// protocol (each side writes only its own index; entries are written
// before the Release store that publishes them), so moving a handle to
// another thread is sound.  The keep-alive is `Send + Sync` by bound.
unsafe impl Send for RingRef {}

impl RingRef {
    /// # Safety
    ///
    /// See [`ShmProducer::attach`].
    // SAFETY: callers uphold the contract above (valid, exclusive,
    // pinned ring region).
    unsafe fn new(
        base: *mut u8,
        capacity: usize,
        keep: Option<Arc<dyn core::any::Any + Send + Sync>>,
    ) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity as u64 <= u32::MAX as u64,
            "ring capacity must be a power of two (≤ 2^32)"
        );
        assert!(
            (base as usize).is_multiple_of(core::mem::align_of::<AtomicU64>()),
            "ring base must be 8-byte aligned"
        );
        Self {
            base,
            mask: capacity as u64 - 1,
            _keep: keep,
        }
    }

    fn tail(&self) -> &AtomicU64 {
        // SAFETY: `attach` asserted alignment and the caller contracted
        // `ring_bytes(capacity)` valid bytes; concurrent access to this
        // word is atomic-only.
        unsafe { &*(self.base.add(TAIL_OFF) as *const AtomicU64) }
    }

    fn head(&self) -> &AtomicU64 {
        // SAFETY: as `tail`.
        unsafe { &*(self.base.add(HEAD_OFF) as *const AtomicU64) }
    }

    fn entry_ptr(&self, index: u64) -> *mut u64 {
        let offset = ENTRIES_OFF + ((index & self.mask) as usize) * ENTRY_BYTES;
        // SAFETY: `index & mask < capacity`, so the entry lies inside
        // the contracted region; 16-byte entries at a 128-byte base keep
        // 8-byte alignment.
        unsafe { self.base.add(offset) as *mut u64 }
    }
}

/// Producer endpoint of a shared-memory descriptor ring.
///
/// `!Sync` by construction (single producer); `Send` so the endpoint can
/// live on whichever thread runs the datapath.
pub struct ShmProducer {
    ring: RingRef,
    /// Consumer index as of the last refresh; only re-read from shared
    /// memory when the ring looks full.
    cached_head: Cell<u64>,
}

impl core::fmt::Debug for ShmProducer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmProducer")
            .field("capacity", &(self.ring.mask + 1))
            .finish()
    }
}

impl ShmProducer {
    /// Attaches the producer end to a ring region.
    ///
    /// # Safety
    ///
    /// * `base` must point to `ring_bytes(capacity)` readable+writable
    ///   bytes, 8-byte aligned, zero-initialized (or left exactly as a
    ///   previous ring of the same capacity left them), and valid for as
    ///   long as the handle (and `keep`) live.
    /// * At most one producer handle may exist per ring across *all*
    ///   attached processes, and entries may not be accessed through any
    ///   other alias while the ring is in use.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two or `base` is
    /// misaligned.
    // SAFETY: callers uphold the `# Safety` contract above.
    pub unsafe fn attach(
        base: *mut u8,
        capacity: usize,
        keep: Option<Arc<dyn core::any::Any + Send + Sync>>,
    ) -> Self {
        Self {
            // SAFETY: forwarded caller contract.
            ring: unsafe { RingRef::new(base, capacity, keep) },
            cached_head: Cell::new(0),
        }
    }

    /// Number of descriptors the ring can hold.
    pub fn capacity(&self) -> usize {
        (self.ring.mask + 1) as usize
    }

    /// Publishes one descriptor; returns it back on a full ring.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-panic) -- literal indices into a `[u64; 2]` descriptor cannot be out of bounds
    pub fn push(&self, descriptor: Descriptor) -> Result<(), Descriptor> {
        // Relaxed: this side is the only writer of `tail`.
        let tail = self.ring.tail().load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head.get()) > self.ring.mask {
            self.cached_head
                .set(self.ring.head().load(Ordering::Acquire));
            if tail.wrapping_sub(self.cached_head.get()) > self.ring.mask {
                return Err(descriptor);
            }
        }
        let entry = self.ring.entry_ptr(tail);
        // SAFETY: the slot at `tail & mask` is outside the consumer's
        // visible window until the Release store below, and the single-
        // producer contract means no other writer exists.
        unsafe {
            entry.write(descriptor[0]);
            entry.add(1).write(descriptor[1]);
        }
        self.ring
            .tail()
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

/// Consumer endpoint of a shared-memory descriptor ring.
pub struct ShmConsumer {
    ring: RingRef,
    /// Producer index as of the last refresh; only re-read from shared
    /// memory when the ring looks empty.
    cached_tail: Cell<u64>,
}

impl core::fmt::Debug for ShmConsumer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShmConsumer")
            .field("capacity", &(self.ring.mask + 1))
            .finish()
    }
}

impl ShmConsumer {
    /// Attaches the consumer end to a ring region.
    ///
    /// # Safety
    ///
    /// As [`ShmProducer::attach`], with "at most one consumer handle"
    /// in place of the producer clause.
    ///
    /// # Panics
    ///
    /// As [`ShmProducer::attach`].
    // SAFETY: callers uphold the `# Safety` contract above.
    pub unsafe fn attach(
        base: *mut u8,
        capacity: usize,
        keep: Option<Arc<dyn core::any::Any + Send + Sync>>,
    ) -> Self {
        Self {
            // SAFETY: forwarded caller contract.
            ring: unsafe { RingRef::new(base, capacity, keep) },
            cached_tail: Cell::new(0),
        }
    }

    /// Number of descriptors the ring can hold.
    pub fn capacity(&self) -> usize {
        (self.ring.mask + 1) as usize
    }

    /// Takes the oldest descriptor, or `None` on an empty ring.
    // insane-lint: hot-path-root
    // insane-lint: allow-fn(hot-path-rwlock) -- `.read()` here is `ptr::read` on the entry pointer, not an RwLock
    pub fn pop(&self) -> Option<Descriptor> {
        // Relaxed: this side is the only writer of `head`.
        let head = self.ring.head().load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail
                .set(self.ring.tail().load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let entry = self.ring.entry_ptr(head);
        // SAFETY: `head < tail` (checked above), so the producer wrote
        // this entry before the Acquire-observed tail publication, and it
        // will not rewrite the slot until we advance `head`.
        let descriptor = unsafe { [entry.read(), entry.add(1).read()] };
        self.ring
            .head()
            .store(head.wrapping_add(1), Ordering::Release);
        Some(descriptor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cell::UnsafeCell;

    /// 8-byte-aligned interior-mutable buffer standing in for a shared
    /// mapping; both endpoints keep the `Arc` alive.
    struct Region(Box<[UnsafeCell<u64>]>);

    // SAFETY: test-only — access is serialized by the ring protocol.
    unsafe impl Send for Region {}
    // SAFETY: as above.
    unsafe impl Sync for Region {}

    fn ring(capacity: usize) -> (ShmProducer, ShmConsumer) {
        let words = ring_bytes(capacity) / 8;
        let region = Arc::new(Region(
            (0..words)
                .map(|_| UnsafeCell::new(0u64))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        ));
        let base = UnsafeCell::raw_get(region.0.as_ptr()).cast::<u8>();
        // SAFETY: `base` covers `ring_bytes(capacity)` zeroed aligned
        // bytes and the Arc keep-alives pin the allocation; one producer,
        // one consumer.
        unsafe {
            (
                ShmProducer::attach(base, capacity, Some(region.clone())),
                ShmConsumer::attach(base, capacity, Some(region)),
            )
        }
    }

    #[test]
    fn fifo_order_and_empty_full_conditions() {
        let (tx, rx) = ring(4);
        assert_eq!(rx.pop(), None);
        for i in 0..4u64 {
            tx.push([i, i * 10]).unwrap();
        }
        assert_eq!(tx.push([9, 9]), Err([9, 9]), "ring full");
        for i in 0..4u64 {
            assert_eq!(rx.pop(), Some([i, i * 10]));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn survives_index_wraparound() {
        let (tx, rx) = ring(2);
        for round in 0..1000u64 {
            tx.push([round, !round]).unwrap();
            tx.push([round + 1, 0]).unwrap();
            assert_eq!(rx.pop(), Some([round, !round]));
            assert_eq!(rx.pop(), Some([round + 1, 0]));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_is_reported() {
        let (tx, rx) = ring(8);
        assert_eq!(tx.capacity(), 8);
        assert_eq!(rx.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = ring(3);
    }

    #[test]
    fn cross_thread_stream_keeps_order() {
        const N: u64 = if cfg!(miri) { 300 } else { 20_000 };
        let (tx, rx) = ring(8);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut d = [i, i.wrapping_mul(31)];
                loop {
                    match tx.push(d) {
                        Ok(()) => break,
                        Err(back) => {
                            d = back;
                            // Yield, not spin: CI runners may be single-core.
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some([a, b]) = rx.pop() {
                assert_eq!(a, next, "descriptors arrived out of order");
                assert_eq!(b, a.wrapping_mul(31));
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
