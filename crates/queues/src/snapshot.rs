//! [`SnapshotCell`]: a wait-free-to-read published-snapshot cell.
//!
//! Read-mostly control state on the polling hot path (dispatch tables,
//! RDMA queue-pair lists, runtime tunables) must not be guarded by a
//! reader-writer lock: even an uncontended `RwLock::read()` is an atomic
//! RMW on a shared cache line, and a writer that gets preempted while
//! holding the lock stalls every polling shard for a scheduler quantum.
//! `SnapshotCell<T>` replaces the lock with the atomic-pointer-swap
//! pattern (the same shape `arc-swap` provides, hand-rolled here because
//! the build is offline and vendors no such crate):
//!
//! * **Writers** build a *complete* new value, wrap it in an [`Arc`],
//!   and [`publish`](SnapshotCell::publish) it — one atomic `swap`.
//!   Readers never observe a half-applied update because the update is
//!   a single pointer publication, never an in-place mutation.
//! * **Readers** either [`load`](SnapshotCell::load) a pinned `Arc`
//!   (two atomic RMWs) or — the per-poll-iteration fast path —
//!   [`refresh`](SnapshotCell::refresh) a thread-local cached `Arc`,
//!   which is a single atomic load and no RMW when the value is
//!   unchanged.
//!
//! Reclamation is RCU-flavoured: readers pin a counter for the few
//! instructions between loading the raw pointer and bumping the `Arc`
//! strong count; a writer spins until the pin count drains before
//! dropping its displaced `Arc` reference.  Writers therefore block
//! (briefly) on readers and on each other — they are control-plane
//! operations — while readers never block on anything.
//!
//! The cell is model-checked under loom (`tests/loom.rs`: publish/read
//! race, reclamation, torn-read impossibility); every atomic goes
//! through the [`crate::sync`] shim.  See DESIGN.md §12.

use crate::sync::{hint, Arc, AtomicPtr, AtomicUsize, Ordering};

/// An atomically publishable snapshot of `T` (see the module docs).
///
/// ```
/// use std::sync::Arc;
/// use insane_queues::SnapshotCell;
///
/// let cell = SnapshotCell::new(vec![1u32, 2, 3]);
/// let mut cached = cell.load();
/// assert!(!cell.refresh(&mut cached)); // unchanged: one atomic load
/// cell.publish(Arc::new(vec![4]));
/// assert!(cell.refresh(&mut cached)); // picked up the new snapshot
/// assert_eq!(*cached, vec![4]);
/// ```
pub struct SnapshotCell<T> {
    /// Raw `Arc` pointer (from [`Arc::into_raw`]); the cell always owns
    /// exactly one strong count through this pointer.
    ptr: AtomicPtr<T>,
    /// Readers mid-[`load`](Self::load): pinned between the pointer load
    /// and the strong-count bump.  Writers drain this to zero before
    /// dropping a displaced value.
    pinned: AtomicUsize,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly what `Arc` allows when `T: Send + Sync`; the raw pointer is
// only ever produced by `Arc::into_raw` and reconstructed under the
// pin/publication protocol below.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: as for `Send` — shared references to the cell only perform
// the atomic publication protocol, which is thread-safe by design.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// Creates a cell holding `value` as its initial snapshot.
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Creates a cell holding an already-shared initial snapshot.
    pub fn from_arc(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            pinned: AtomicUsize::new(0),
        }
    }

    /// Returns the current snapshot, bumping its strong count.
    ///
    /// Two atomic RMWs (pin + unpin); never blocks.  Hot paths that read
    /// the cell every iteration should prefer [`refresh`](Self::refresh),
    /// which degenerates to a single atomic load when nothing changed.
    pub fn load(&self) -> Arc<T> {
        // Pin before the pointer load.  SeqCst on both sides of the
        // protocol gives a total order: if this pin precedes a writer's
        // swap, the writer's post-swap drain loop observes it and waits;
        // if it follows the swap, the load below (also SeqCst-ordered
        // after the pin) observes the *new* pointer, whose strong count
        // only the next writer may release.
        self.pinned.fetch_add(1, Ordering::SeqCst);
        let raw = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `raw` came from `Arc::into_raw` (the only writes to
        // `self.ptr`) and its strong count is held by the cell: a writer
        // that swapped it out cannot drop that count until `pinned`
        // drains back to zero, which cannot happen before the `fetch_sub`
        // below — so the count is alive for the increment.
        unsafe { Arc::increment_strong_count(raw) };
        // SAFETY: the increment above minted a strong count that this
        // `from_raw` takes ownership of; the cell's own count is intact.
        let snapshot = unsafe { Arc::from_raw(raw) };
        self.pinned.fetch_sub(1, Ordering::SeqCst);
        snapshot
    }

    /// Re-reads the cell into `cached` if it changed.
    ///
    /// Returns `true` when `cached` was replaced by a newer snapshot.
    /// The unchanged case — the overwhelmingly common one on a polling
    /// loop — is a single atomic load and a pointer compare.  This is
    /// ABA-safe: `cached` holds a strong count on its own pointer, so
    /// that address cannot be freed and reused while the comparison runs.
    pub fn refresh(&self, cached: &mut Arc<T>) -> bool {
        let current = self.ptr.load(Ordering::SeqCst);
        if core::ptr::eq(current, Arc::as_ptr(cached)) {
            return false;
        }
        *cached = self.load();
        true
    }

    /// Publishes `value` as the new snapshot.
    ///
    /// One atomic swap makes the value visible to every subsequent
    /// reader; the displaced snapshot is released once in-flight readers
    /// unpin (its memory is freed when the last outstanding `Arc` clone
    /// drops).  Writers spin while readers are pinned, so publication is
    /// a control-plane operation; concurrent writers are safe (each
    /// reclaims exactly the pointer it displaced) but callers that need
    /// read-modify-write updates must serialize themselves externally.
    ///
    /// (Named `publish`, not `store`, deliberately: it is not the
    /// non-waiting atomic store its receiver syntax resembles.)
    pub fn publish(&self, value: Arc<T>) {
        let fresh = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(fresh, Ordering::SeqCst);
        // Drain readers that may have loaded `old` but not yet bumped
        // its strong count.  The pin window is a handful of instructions
        // with no blocking inside, so this resolves immediately in
        // practice; yield periodically anyway in case a pinned reader
        // was preempted on a loaded machine.
        let mut spins = 0u32;
        while self.pinned.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                crate::sync::thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` and the cell owned one
        // strong count through it; after the swap no new reader can
        // observe `old`, and the drain above guarantees every reader
        // that did observe it has finished minting its own count — so
        // reclaiming the cell's count here is sound and unique (only the
        // writer that swapped `old` out reaches this line with it).
        drop(unsafe { Arc::from_raw(old) });
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        let raw = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `&mut self` means no concurrent readers or writers
        // exist; the cell still owns the strong count minted when the
        // current pointer was published, and this reclaims it.
        drop(unsafe { Arc::from_raw(raw) });
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("value", &*self.load())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn load_returns_the_published_value() {
        let cell = SnapshotCell::new(7u32);
        assert_eq!(*cell.load(), 7);
        cell.publish(Arc::new(9));
        assert_eq!(*cell.load(), 9);
    }

    #[test]
    fn refresh_is_a_noop_until_a_store() {
        let cell = SnapshotCell::new(String::from("a"));
        let mut cached = cell.load();
        assert!(!cell.refresh(&mut cached));
        assert!(!cell.refresh(&mut cached));
        cell.publish(Arc::new(String::from("b")));
        assert!(cell.refresh(&mut cached));
        assert_eq!(*cached, "b");
        assert!(!cell.refresh(&mut cached));
    }

    #[test]
    fn displaced_snapshots_drop_exactly_once() {
        struct Counted(Arc<core::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, core::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(core::sync::atomic::AtomicUsize::new(0));
        let cell = SnapshotCell::new(Counted(Arc::clone(&drops)));
        let held = cell.load();
        cell.publish(Arc::new(Counted(Arc::clone(&drops))));
        // The displaced value is still alive through `held`.
        assert_eq!(drops.load(core::sync::atomic::Ordering::SeqCst), 0);
        drop(held);
        assert_eq!(drops.load(core::sync::atomic::Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(drops.load(core::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_readers_see_only_complete_pairs() {
        // Smoke version of the loom torn-read model: both fields of the
        // snapshot must always agree.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(core::sync::atomic::AtomicUsize::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut cached = cell.load();
                    while stop.load(core::sync::atomic::Ordering::Relaxed) == 0 {
                        cell.refresh(&mut cached);
                        let (a, b) = *cached;
                        assert_eq!(a, b, "torn snapshot observed");
                        let direct = cell.load();
                        assert_eq!(direct.0, direct.1, "torn snapshot observed");
                    }
                })
            })
            .collect();
        for i in 1..=1000u64 {
            cell.publish(Arc::new((i, i)));
        }
        stop.store(1, core::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.load().0, 1000);
    }
}
