//! Property-based tests for the queue primitives.

use insane_queues::{spsc, FreeStack, MpmcQueue};
use proptest::prelude::*;

proptest! {
    /// Whatever interleaving of pushes and pops we perform, the SPSC ring
    /// yields exactly the pushed values, in order, with no loss and no
    /// duplication.
    #[test]
    fn spsc_is_fifo_and_lossless(ops in proptest::collection::vec(any::<bool>(), 1..400),
                                 cap in 1usize..32) {
        let (tx, rx) = spsc::channel::<u64>(cap);
        let mut next_push = 0u64;
        let mut next_expect = 0u64;
        let mut queued = 0usize;
        for is_push in ops {
            if is_push {
                match tx.push(next_push) {
                    Ok(()) => {
                        next_push += 1;
                        queued += 1;
                        prop_assert!(queued <= tx.capacity());
                    }
                    Err(_) => prop_assert_eq!(queued, tx.capacity()),
                }
            } else {
                match rx.pop() {
                    Some(v) => {
                        prop_assert_eq!(v, next_expect);
                        next_expect += 1;
                        queued -= 1;
                    }
                    None => prop_assert_eq!(queued, 0),
                }
            }
        }
        // Drain: everything pushed must come out in order.
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, next_expect);
            next_expect += 1;
        }
        prop_assert_eq!(next_expect, next_push);
    }

    /// The MPMC queue behaves identically to a model VecDeque under any
    /// single-threaded operation sequence.
    #[test]
    fn mpmc_matches_vecdeque_model(ops in proptest::collection::vec(any::<Option<u16>>(), 1..400),
                                   cap in 1usize..32) {
        let q = MpmcQueue::<u16>::new(cap);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => match q.push(v) {
                    Ok(()) => model.push_back(v),
                    Err(back) => {
                        prop_assert_eq!(back, v);
                        prop_assert_eq!(model.len(), q.capacity());
                    }
                },
                None => prop_assert_eq!(q.pop(), model.pop_front()),
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    /// Popping everything from a stack pre-filled with 0..n yields a
    /// permutation of 0..n regardless of interleaved pushes.
    #[test]
    fn free_stack_is_a_permutation(cap in 1usize..64,
                                   ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let stack = FreeStack::full(cap);
        let mut held = Vec::new();
        for take in ops {
            if take {
                if let Some(i) = stack.pop() {
                    prop_assert!((i as usize) < cap);
                    held.push(i);
                }
            } else if let Some(i) = held.pop() {
                stack.push(i);
            }
        }
        while let Some(i) = stack.pop() {
            held.push(i);
        }
        held.sort_unstable();
        let expect: Vec<u32> = (0..cap as u32).collect();
        prop_assert_eq!(held, expect);
    }
}
