//! Loom model-checking suite for the lock-free queues.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p insane-queues --release
//! --test loom`.  Under that cfg the `insane_queues::sync` shim resolves
//! to loom's instrumented atomics and cells, so every interleaving the
//! checker explores exercises the real queue code (see DESIGN.md §7).
#![cfg(loom)]

use insane_queues::{channel, FreeStack, MpmcQueue};
use loom::sync::Arc;
use loom::thread;

/// SPSC: the consumer observes every value exactly once and in order,
/// including across the index wrap-around (capacity 2, 5 values = two
/// full laps plus one).
#[test]
fn spsc_preserves_fifo_across_wraparound() {
    loom::model(|| {
        let (tx, rx) = channel::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..5u32 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(e) => {
                            v = e.0;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 5 {
            match rx.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(rx.pop().is_none());
    });
}

/// SPSC: dropping the receiver mid-stream never loses the producer's
/// liveness signal — `push` keeps returning the value, never blocks or
/// double-drops.
#[test]
fn spsc_receiver_drop_is_observed() {
    loom::model(|| {
        let (tx, rx) = channel::<u32>(2);
        let consumer = thread::spawn(move || {
            let _ = rx.pop();
            drop(rx);
        });
        for i in 0..4u32 {
            if tx.push(i).is_err() && !tx.receiver_alive() {
                break;
            }
            thread::yield_now();
        }
        consumer.join().unwrap();
    });
}

/// MPMC: two producers contend for sequence numbers; the consumer drains
/// exactly the pushed multiset (no loss, no duplication, per-producer
/// order preserved).
#[test]
fn mpmc_two_producers_no_loss_no_duplication() {
    loom::model(|| {
        let q = Arc::new(MpmcQueue::<u32>::new(4));
        let mut handles = Vec::new();
        for p in 0..2u32 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..2u32 {
                    let mut v = p * 100 + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        // Per-producer FIFO: 0 before 1, 100 before 101.
        let pos = |v: u32| got.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(100) < pos(101));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 100, 101]);
        assert!(q.pop().is_none());
    });
}

/// FreeStack: concurrent pop/push/pop cycles never hand the same index to
/// two holders at once — the generation tag in the packed head defeats
/// the classic ABA scenario (pop sees head A, another thread pops A,
/// pushes B, pushes A back, first CAS must fail).
#[test]
fn free_stack_aba_never_duplicates_an_index() {
    loom::model(|| {
        let stack = Arc::new(FreeStack::full(3));
        let mut handles = Vec::new();
        // Two churners run pop → (window) → push cycles; the window is
        // where a non-tagged stack would let the head pointer come back
        // around (A-B-A) and a stale CAS succeed.
        for _ in 0..2 {
            let stack = Arc::clone(&stack);
            handles.push(thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(i) = stack.pop() {
                        thread::yield_now();
                        stack.push(i);
                    }
                }
            }));
        }
        // Meanwhile this thread holds two slots at once: if ABA corruption
        // handed out an index twice, the two simultaneously-held indices
        // could collide.
        let a = stack.pop();
        let b = stack.pop();
        if let (Some(a), Some(b)) = (a, b) {
            assert_ne!(a, b, "free stack handed out one index twice");
        }
        if let Some(a) = a {
            stack.push(a);
        }
        if let Some(b) = b {
            stack.push(b);
        }
        for h in handles {
            h.join().unwrap();
        }
        // ABA corruption loses or duplicates nodes; after every holder has
        // pushed back, the drain must yield exactly the original indices.
        let mut drained = Vec::new();
        while let Some(i) = stack.pop() {
            drained.push(i);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2]);
    });
}
