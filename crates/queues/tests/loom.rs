//! Loom model-checking suite for the lock-free queues.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p insane-queues --release
//! --test loom`.  Under that cfg the `insane_queues::sync` shim resolves
//! to loom's instrumented atomics and cells, so every interleaving the
//! checker explores exercises the real queue code (see DESIGN.md §7).
#![cfg(loom)]

use insane_queues::{channel, FreeStack, MpmcQueue};
use loom::sync::Arc;
use loom::thread;

/// SPSC: the consumer observes every value exactly once and in order,
/// including across the index wrap-around (capacity 2, 5 values = two
/// full laps plus one).
#[test]
fn spsc_preserves_fifo_across_wraparound() {
    loom::model(|| {
        let (tx, rx) = channel::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..5u32 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(e) => {
                            v = e.0;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 5 {
            match rx.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(rx.pop().is_none());
    });
}

/// SPSC: dropping the receiver mid-stream never loses the producer's
/// liveness signal — `push` keeps returning the value, never blocks or
/// double-drops.
#[test]
fn spsc_receiver_drop_is_observed() {
    loom::model(|| {
        let (tx, rx) = channel::<u32>(2);
        let consumer = thread::spawn(move || {
            let _ = rx.pop();
            drop(rx);
        });
        for i in 0..4u32 {
            if tx.push(i).is_err() && !tx.receiver_alive() {
                break;
            }
            thread::yield_now();
        }
        consumer.join().unwrap();
    });
}

/// MPMC: two producers contend for sequence numbers; the consumer drains
/// exactly the pushed multiset (no loss, no duplication, per-producer
/// order preserved).
#[test]
fn mpmc_two_producers_no_loss_no_duplication() {
    loom::model(|| {
        let q = Arc::new(MpmcQueue::<u32>::new(4));
        let mut handles = Vec::new();
        for p in 0..2u32 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..2u32 {
                    let mut v = p * 100 + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            match q.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        // Per-producer FIFO: 0 before 1, 100 before 101.
        let pos = |v: u32| got.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(100) < pos(101));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 100, 101]);
        assert!(q.pop().is_none());
    });
}

/// FreeStack: concurrent pop/push/pop cycles never hand the same index to
/// two holders at once — the generation tag in the packed head defeats
/// the classic ABA scenario (pop sees head A, another thread pops A,
/// pushes B, pushes A back, first CAS must fail).
#[test]
fn free_stack_aba_never_duplicates_an_index() {
    loom::model(|| {
        let stack = Arc::new(FreeStack::full(3));
        let mut handles = Vec::new();
        // Two churners run pop → (window) → push cycles; the window is
        // where a non-tagged stack would let the head pointer come back
        // around (A-B-A) and a stale CAS succeed.
        for _ in 0..2 {
            let stack = Arc::clone(&stack);
            handles.push(thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(i) = stack.pop() {
                        thread::yield_now();
                        stack.push(i);
                    }
                }
            }));
        }
        // Meanwhile this thread holds two slots at once: if ABA corruption
        // handed out an index twice, the two simultaneously-held indices
        // could collide.
        let a = stack.pop();
        let b = stack.pop();
        if let (Some(a), Some(b)) = (a, b) {
            assert_ne!(a, b, "free stack handed out one index twice");
        }
        if let Some(a) = a {
            stack.push(a);
        }
        if let Some(b) = b {
            stack.push(b);
        }
        for h in handles {
            h.join().unwrap();
        }
        // ABA corruption loses or duplicates nodes; after every holder has
        // pushed back, the drain must yield exactly the original indices.
        let mut drained = Vec::new();
        while let Some(i) = stack.pop() {
            drained.push(i);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2]);
    });
}

/// SnapshotCell publish/read race: however the reader's `load`/`refresh`
/// interleaves with the writer's `store`, it observes either the old or
/// the new snapshot in full — both fields of the pair always agree, so a
/// torn read (pointer to a half-published value) is impossible.
#[test]
fn snapshot_cell_readers_never_see_torn_values() {
    loom::model(|| {
        let cell = Arc::new(insane_queues::SnapshotCell::new((1u64, 1u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(Arc::new((2, 2)));
            })
        };
        let mut cached = cell.load();
        let (a, b) = *cached;
        assert_eq!(a, b, "torn snapshot via load");
        cell.refresh(&mut cached);
        let (a, b) = *cached;
        assert_eq!(a, b, "torn snapshot via refresh");
        writer.join().unwrap();
        // After the writer is joined the publication must be visible.
        assert!(cached.0 == 2 || cell.load().0 == 2);
    });
}

/// SnapshotCell reclamation: a snapshot displaced while a reader races
/// the writer is dropped exactly once, and only after both the cell and
/// every reader-held `Arc` let go — no double free, no leak, no
/// use-after-free of the displaced value.
#[test]
fn snapshot_cell_reclaims_displaced_value_exactly_once() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counted(Arc<AtomicUsize>, u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    loom::model(|| {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(insane_queues::SnapshotCell::new(Counted(
            Arc::clone(&drops),
            1,
        )));
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                // Race the pin window against the writer's swap+drain;
                // reading the value proves the snapshot is alive.
                let held = cell.load();
                held.1
            })
        };
        cell.publish(Arc::new(Counted(Arc::clone(&drops), 2)));
        let seen = reader.join().unwrap();
        assert!(seen == 1 || seen == 2, "reader saw a value never published");
        // The reader's Arc is gone and the old value was displaced: the
        // first snapshot must have dropped exactly once by now.
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "cell leaked its value");
    });
}

/// SnapshotCell with two successive publications racing a `refresh`ing
/// reader: the reader's cached snapshot only ever moves forward through
/// the published sequence, and settles on the final value once the
/// writer is joined.
#[test]
fn snapshot_cell_refresh_moves_monotonically_forward() {
    loom::model(|| {
        let cell = Arc::new(insane_queues::SnapshotCell::new(0u64));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(Arc::new(1));
                cell.publish(Arc::new(2));
            })
        };
        let mut cached = cell.load();
        let mut last = *cached;
        for _ in 0..2 {
            cell.refresh(&mut cached);
            assert!(*cached >= last, "snapshot went backwards");
            last = *cached;
        }
        writer.join().unwrap();
        cell.refresh(&mut cached);
        assert_eq!(*cached, 2);
    });
}
