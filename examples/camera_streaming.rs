//! Real-time image streaming with Lunar Streaming: the paper's §7.2
//! scenario — cameras on a production line stream raw frames to a
//! central analysis node, fragmented at the application level and
//! reassembled zero-copy-consciously on arrival.
//!
//! ```bash
//! cargo run --example camera_streaming
//! ```

use insane::core::runtime::poll_until_quiescent;
use insane::lunar::streaming::{FrameSource, LunarStreamClient, LunarStreamServer};
use insane::{ChannelId, Fabric, QosPolicy, Runtime, RuntimeConfig, TestbedProfile, ThreadingMode};

/// A synthetic 2K camera: 2560×1440 RGB frames with a moving gradient.
struct Camera {
    frame_index: u32,
    frames_left: u32,
}

impl FrameSource for Camera {
    fn get_frame(&mut self) -> Option<Vec<u8>> {
        if self.frames_left == 0 {
            return None;
        }
        self.frames_left -= 1;
        self.frame_index += 1;
        let shift = self.frame_index;
        // 2K raw RGB ≈ 11 MB; scaled down here so the example stays quick.
        let (width, height) = (640usize, 360usize);
        let mut frame = vec![0u8; width * height * 3];
        for (i, px) in frame.chunks_exact_mut(3).enumerate() {
            px[0] = ((i as u32).wrapping_add(shift) & 0xFF) as u8;
            px[1] = ((i as u32 >> 8).wrapping_add(shift) & 0xFF) as u8;
            px[2] = 0x40;
        }
        Some(frame)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::new(TestbedProfile::local());
    let camera_node = fabric.add_host("camera");
    let analysis_node = fabric.add_host("analysis");
    // Manual drive keeps the example deterministic on any machine.
    let config = |id| RuntimeConfig::new(id).with_threading(ThreadingMode::Manual);
    let rt_camera = Runtime::start(config(1), &fabric, camera_node)?;
    let rt_analysis = Runtime::start(config(2), &fabric, analysis_node)?;
    rt_camera.add_peer(analysis_node)?;
    poll_until_quiescent(&[&rt_camera, &rt_analysis], 100_000);

    let channel = ChannelId(2001);
    let mut client = LunarStreamClient::connect(&rt_analysis, QosPolicy::fast(), channel)?;
    poll_until_quiescent(&[&rt_camera, &rt_analysis], 100_000);
    let mut server = LunarStreamServer::open(&rt_camera, QosPolicy::fast(), channel)?;
    poll_until_quiescent(&[&rt_camera, &rt_analysis], 100_000);
    println!(
        "streaming 640x360 RGB frames in fragments of up to {} bytes",
        server.max_fragment()
    );

    let mut camera = Camera {
        frame_index: 0,
        frames_left: 4,
    };
    let mut received = 0;
    while let Some(frame) = camera.get_frame() {
        server.send_frame_with(&frame, || {
            rt_camera.poll_once();
            rt_analysis.poll_once();
        })?;
        // Drain until the frame reassembles.
        loop {
            rt_camera.poll_once();
            rt_analysis.poll_once();
            let frames = client.poll_frames()?;
            if let Some(done) = frames.into_iter().next() {
                received += 1;
                println!(
                    "frame #{:<2} {:>7} bytes reassembled, end-to-end {:.2} ms",
                    done.frame_id,
                    done.data.len(),
                    done.latency_ns as f64 / 1e6
                );
                break;
            }
        }
    }
    assert_eq!(received, 4);
    println!(
        "no incomplete frames pending: {}",
        client.frames_pending() == 0
    );
    Ok(())
}
