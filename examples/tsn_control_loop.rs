//! Time-Sensitive Networking: a soft real-time control loop sharing a
//! node with bulk traffic (§5.2/§5.3's IEEE 802.1Qbv scheduler).
//!
//! The runtime is configured with a time-aware gate program: the first
//! 200 µs of every 1 ms cycle belong exclusively to the time-critical
//! class.  A control stream marked `TimeSensitive` rides that window; a
//! bulk stream on the same runtime waits it out.
//!
//! ```bash
//! cargo run --example tsn_control_loop
//! ```

use std::time::Duration;

use insane::core::runtime::poll_until_quiescent;
use insane::{
    Acceleration, ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, ResourceUsage, Runtime,
    RuntimeConfig, SchedulerChoice, Technology, TestbedProfile, ThreadingMode, TimeSensitivity,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::new(TestbedProfile::local());
    let plc = fabric.add_host("plc");
    let actuator = fabric.add_host("actuator");

    let tsn = SchedulerChoice::TimeAware {
        critical_window: Duration::from_micros(200),
        cycle: Duration::from_millis(1),
        guard_band: Duration::ZERO,
        frame_tx: Duration::ZERO,
    };
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&[Technology::KernelUdp, Technology::Dpdk])
            .with_scheduler(tsn)
            .with_threading(ThreadingMode::Manual)
    };
    let rt_plc = Runtime::start(config(1), &fabric, plc)?;
    let rt_act = Runtime::start(config(2), &fabric, actuator)?;
    rt_plc.add_peer(actuator)?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);

    let session_plc = insane::Session::connect(&rt_plc)?;
    let session_act = insane::Session::connect(&rt_act)?;

    // The control stream: accelerated AND time-sensitive.
    let control_qos = QosPolicy {
        acceleration: Acceleration::Preferred,
        resource_usage: ResourceUsage::Unconstrained,
        time_sensitivity: TimeSensitivity::time_critical(),
    };
    let control_tx = session_plc.create_stream(control_qos)?;
    let control_rx = session_act.create_stream(control_qos)?;
    // Bulk diagnostics share the node, best effort.
    let bulk_tx = session_plc.create_stream(QosPolicy::fast())?;

    let setpoint_sink = control_rx.create_sink(ChannelId(1))?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);
    let setpoints = control_tx.create_source(ChannelId(1))?;
    let diagnostics = bulk_tx.create_source(ChannelId(2))?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);

    println!(
        "control stream: {} + 802.1Qbv class TC{}",
        control_tx.technology(),
        7
    );

    // Each control iteration: queue a burst of bulk diagnostics, then the
    // setpoint.  The gate program guarantees the setpoint's window.
    for cycle in 0..5u32 {
        for _ in 0..8 {
            let mut noise = diagnostics.get_buffer(512)?;
            noise[..4].copy_from_slice(&cycle.to_le_bytes());
            diagnostics.emit(noise)?;
        }
        let mut sp = setpoints.get_buffer(8)?;
        sp.copy_from_slice(&(1000 + cycle as u64).to_le_bytes());
        sp[7] = cycle as u8;
        setpoints.emit(sp)?;

        let msg = loop {
            rt_plc.poll_once();
            rt_act.poll_once();
            match setpoint_sink.consume(ConsumeMode::NonBlocking) {
                Ok(m) => break m,
                Err(InsaneError::WouldBlock) => {}
                Err(e) => return Err(e.into()),
            }
        };
        let breakdown = msg.breakdown();
        println!(
            "cycle {cycle}: setpoint delivered, one-way {:.2} us (network {:.2} us)",
            breakdown.total_ns() as f64 / 1_000.0,
            breakdown.network_ns as f64 / 1_000.0,
        );
    }
    println!("time-critical setpoints rode their exclusive gate windows.");
    Ok(())
}
