//! The portability story: one application function, deployed unchanged
//! on three heterogeneous edge nodes, binds to three different
//! technologies — and falls back gracefully where acceleration is absent.
//!
//! This is the scenario the paper's introduction motivates: edge
//! components migrate between nodes at runtime, so code must not be
//! tailored to any particular network technology.
//!
//! ```bash
//! cargo run --example qos_migration
//! ```

use insane::core::runtime::poll_until_quiescent;
use insane::{
    ChannelId, ConsumeMode, Fabric, HostId, InsaneError, QosPolicy, Runtime, RuntimeConfig,
    Session, Technology, TestbedProfile, ThreadingMode,
};

/// The *entire* networking code of the application: note that no
/// technology name appears anywhere — only a QoS policy.
fn telemetry_burst(runtime: &Runtime, drive: &[&Runtime]) -> Result<Technology, InsaneError> {
    let session = Session::connect(runtime)?;
    let stream = session.create_stream(QosPolicy::fast())?;
    let source = stream.create_source(ChannelId(400))?;
    let sink = stream.create_sink(ChannelId(400))?;
    for i in 0..3u8 {
        let mut buf = source.get_buffer(3)?;
        buf.copy_from_slice(&[i, i, i]);
        source.emit(buf)?;
    }
    let mut got = 0;
    while got < 3 {
        for rt in drive {
            rt.poll_once();
        }
        match sink.consume(ConsumeMode::NonBlocking) {
            Ok(msg) => {
                drop(msg);
                got += 1;
            }
            Err(InsaneError::WouldBlock) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(stream.technology())
}

fn deploy(fabric: &Fabric, id: u32, host: HostId, techs: &[Technology]) -> Runtime {
    Runtime::start(
        RuntimeConfig::new(id)
            .with_technologies(techs)
            .with_threading(ThreadingMode::Manual),
        fabric,
        host,
    )
    .expect("runtime starts")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::new(TestbedProfile::local());

    // Three very different edge nodes.
    let vm = fabric.add_host("cloud-vm");
    let edge_box = fabric.add_host("edge-box");
    let rack = fabric.add_host("rack-server");
    let rt_vm = deploy(&fabric, 1, vm, &[Technology::KernelUdp]);
    let rt_edge = deploy(
        &fabric,
        2,
        edge_box,
        &[Technology::KernelUdp, Technology::Xdp, Technology::Dpdk],
    );
    let rt_rack = deploy(
        &fabric,
        3,
        rack,
        &[
            Technology::KernelUdp,
            Technology::Xdp,
            Technology::Dpdk,
            Technology::Rdma,
        ],
    );
    poll_until_quiescent(&[&rt_vm, &rt_edge, &rt_rack], 100_000);

    // "Migrate" the very same component across the three nodes.
    for (name, rt) in [
        ("cloud-vm (kernel only)", &rt_vm),
        ("edge-box (XDP+DPDK)", &rt_edge),
        ("rack-server (RDMA)", &rt_rack),
    ] {
        let drive = [&rt_vm, &rt_edge, &rt_rack];
        let mapped = telemetry_burst(rt, &drive)?;
        println!("component on {name:26} ran over: {mapped}");
    }
    println!("\nsame binary, three datapaths — the middleware chose.");
    Ok(())
}
