//! Process split: a real `insaned` runtime daemon in one OS process, a
//! thin-client application in another, exchanging messages over shared
//! memory with zero payload copies.
//!
//! ```bash
//! cargo run --example process_split
//! ```
//!
//! The example re-execs itself as the daemon (`--daemon <socket>`), so a
//! single binary demonstrates the whole split:
//!
//! 1. spawn the daemon and wait for its ready line;
//! 2. `IpcClient::attach` — version handshake, segment fd over
//!    `SCM_RIGHTS`, `mmap`, pool + ring attach;
//! 3. `lend → emit → try_recv → drop` round trips, asserting that every
//!    received view points *into the shared segment* (the zero-copy
//!    proof) and arrives in order;
//! 4. graceful shutdown: `request_shutdown` + `detach`, then reap the
//!    daemon and check the control socket is gone.
//!
//! See DESIGN.md §13 for the segment layout and the attach/reclaim
//! protocols, and `crates/bench/src/bin/ipc_bench.rs` for the measured
//! version of this experiment (`BENCH_ipc.json`).

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Command, Stdio};

use insane::ipc::{IpcClient, IpcServer, ServerConfig};

const MESSAGES: u64 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    match (args.next().as_deref(), args.next()) {
        (Some("--daemon"), Some(socket)) => daemon(Path::new(&socket)),
        _ => client(),
    }
}

/// Child role: the per-host runtime daemon (`insaned` in miniature).
fn daemon(socket: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let server = IpcServer::start(ServerConfig::new(socket))?;
    println!("insaned listening on {}", server.socket_path().display());
    std::io::stdout().flush()?;
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
    Ok(())
}

/// Parent role: the application, linked against only the thin client.
fn client() -> Result<(), Box<dyn std::error::Error>> {
    let socket = std::env::temp_dir().join(format!("insane-example-{}.sock", std::process::id()));

    // --- 1. A second OS process for the runtime. ---
    let exe = std::env::current_exe()?;
    let mut daemon = Command::new(exe)
        .arg("--daemon")
        .arg(&socket)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = daemon.stdout.take().ok_or("daemon stdout not captured")?;
    let mut ready = String::new();
    BufReader::new(stdout).read_line(&mut ready)?;
    if !ready.starts_with("insaned listening on") {
        return Err(format!("unexpected daemon greeting: {ready:?}").into());
    }
    println!("daemon pid {} ready on {}", daemon.id(), socket.display());

    // --- 2. Attach: handshake + segment fd + mmap, all in one call. ---
    let mut client = IpcClient::attach(&socket, "example-tenant", "fast")?;
    let stream = client.create_stream("ping")?;
    println!(
        "attached as session {} (stream {stream}, pool of {} x {} B slots)",
        client.session(),
        client.pool().slot_count(),
        client.pool().slot_size(),
    );

    // --- 3. Zero-copy round trips across the process boundary. ---
    for seq in 0..MESSAGES {
        let mut guard = client.lend(8)?;
        guard.copy_from_slice(&seq.to_le_bytes());
        let mut pending = Some(guard);
        while let Some(guard) = pending.take() {
            if let Err(guard) = client.emit(stream, guard) {
                pending = Some(guard); // TX ring full: retry
                std::thread::yield_now();
            }
        }
        let (got_stream, view) = loop {
            match client.try_recv() {
                Some(reply) => break reply,
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(got_stream, stream, "descriptor routed to the wrong stream");
        assert!(
            client.segment().contains_ptr(view.as_ptr()),
            "reply was copied out of the shared segment"
        );
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&view[..8]);
        assert_eq!(u64::from_le_bytes(bytes), seq, "replies out of order");
    }
    let stats = client.pool().stats();
    println!(
        "{MESSAGES} messages round-tripped in order, every reply a view into the \
         shared segment ({} acquires, {} slots still out)",
        stats.acquires, stats.in_use,
    );

    // --- 4. Graceful teardown. ---
    client.request_shutdown()?;
    client.detach()?;
    let status = daemon.wait()?;
    if !status.success() {
        return Err(format!("daemon exited with {status}").into());
    }
    if socket.exists() {
        return Err("daemon left its control socket behind".into());
    }
    println!("daemon exited cleanly and removed its socket");
    Ok(())
}
