//! Observability demo: a runtime under live traffic with the
//! introspection endpoint served on a Unix-domain socket, ready to be
//! inspected with `insanectl`.
//!
//! ```bash
//! cargo run --example observability &          # serves for ~30 s
//! cargo run -p insanectl -- stats /tmp/insane-observability.sock
//! ```
//!
//! The runtime drives a fast (DPDK-mapped) and a slow (kernel-UDP)
//! stream between two simulated edge nodes while serving `stats` and
//! `ping` requests; the fast stream carries a 50 µs latency budget so
//! `insanectl` has QoS-budget accounting to show.

use std::time::{Duration, Instant};

use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session,
    Technology, TelemetryConfig, TestbedProfile, TimeSensitivity,
};

const SOCKET: &str = "/tmp/insane-observability.sock";

fn main() -> Result<(), InsaneError> {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let fabric = Fabric::new(TestbedProfile::local());
    let node_a = fabric.add_host("edge-a");
    let node_b = fabric.add_host("edge-b");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    // The consuming runtime records every message against a 50 µs
    // latency budget, so `insanectl stats` shows violation counts.
    let telemetry = TelemetryConfig::default().with_latency_budget(Duration::from_micros(50));
    let rt_a = Runtime::start(
        RuntimeConfig::new(1).with_technologies(&techs),
        &fabric,
        node_a,
    )?;
    let rt_b = Runtime::start(
        RuntimeConfig::new(2)
            .with_technologies(&techs)
            .with_telemetry(telemetry),
        &fabric,
        node_b,
    )?;
    rt_a.add_peer(node_b)?;
    std::thread::sleep(Duration::from_millis(50));

    rt_b.serve_introspection(SOCKET)?;
    println!("introspection endpoint: {SOCKET}");
    println!("try: cargo run -p insanectl -- stats {SOCKET}");

    let session_a = Session::connect(&rt_a)?;
    let session_b = Session::connect(&rt_b)?;
    // A time-critical (DPDK-mapped) stream — subject to the latency
    // budget — and a best-effort kernel-UDP one.
    let fast_qos = QosPolicy {
        time_sensitivity: TimeSensitivity::time_critical(),
        ..QosPolicy::fast()
    };
    let fast_tx = session_a.create_stream(fast_qos)?;
    let slow_tx = session_a.create_stream(QosPolicy::slow())?;
    let fast_rx = session_b.create_stream(fast_qos)?;
    let slow_rx = session_b.create_stream(QosPolicy::slow())?;
    let fast_sink = fast_rx.create_sink(ChannelId(10))?;
    let slow_sink = slow_rx.create_sink(ChannelId(20))?;
    std::thread::sleep(Duration::from_millis(50));
    let fast_source = fast_tx.create_source(ChannelId(10))?;
    let slow_source = slow_tx.create_source(ChannelId(20))?;

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut sent = 0u64;
    let mut consumed = 0u64;
    while Instant::now() < deadline {
        for (source, payload) in [(&fast_source, 64usize), (&slow_source, 512)] {
            if let Ok(mut buf) = source.get_buffer(payload) {
                buf.fill(0xab);
                if source.emit(buf).is_ok() {
                    sent += 1;
                }
            }
        }
        for sink in [&fast_sink, &slow_sink] {
            while let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
                drop(msg);
                consumed += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("done: emitted {sent}, consumed {consumed} messages");
    rt_b.shutdown();
    rt_a.shutdown();
    Ok(())
}
