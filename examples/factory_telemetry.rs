//! Factory telemetry over LunarMoM: the paper's §7.1 scenario.
//!
//! A production-line controller on one edge node publishes sensor
//! readings on topics; an analytics service on a second node subscribes.
//! The same application code runs accelerated (DPDK) or on plain kernel
//! networking depending only on the QoS policy.
//!
//! ```bash
//! cargo run --example factory_telemetry
//! ```

use std::time::Duration;

use insane::lunar::LunarMom;
use insane::{Fabric, QosPolicy, Runtime, RuntimeConfig, TestbedProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::new(TestbedProfile::local());
    let line_node = fabric.add_host("production-line");
    let analytics_node = fabric.add_host("analytics");

    // One INSANE runtime per node, with real polling threads.
    let rt_line = Runtime::start(RuntimeConfig::new(1), &fabric, line_node)?;
    let rt_analytics = Runtime::start(RuntimeConfig::new(2), &fabric, analytics_node)?;
    rt_line.add_peer(analytics_node)?;
    std::thread::sleep(Duration::from_millis(50)); // control plane settles

    // The analytics service subscribes to two topics.
    let analytics = LunarMom::connect(&rt_analytics, QosPolicy::fast())?;
    let temperatures = analytics.subscriber("factory/line1/temperature")?;
    let vibrations = analytics.subscriber("factory/line1/vibration")?;
    std::thread::sleep(Duration::from_millis(50)); // subscriptions propagate

    // The controller publishes readings.
    let controller = LunarMom::connect(&rt_line, QosPolicy::fast())?;
    println!("MoM mapped to: {}", controller.technology());
    for i in 0..5u32 {
        let temp = format!("{{\"celsius\": {}}}", 40 + i);
        let vibe = format!("{{\"mm_s\": {}}}", 2 * i);
        controller.publish("factory/line1/temperature", temp.as_bytes())?;
        controller.publish("factory/line1/vibration", vibe.as_bytes())?;
    }

    // Consume with blocking reads (the runtimes' threads do the work).
    for _ in 0..5 {
        let t = temperatures.next_blocking()?;
        let v = vibrations.next_blocking()?;
        println!(
            "temperature: {}   vibration: {}",
            String::from_utf8_lossy(&t),
            String::from_utf8_lossy(&v)
        );
    }
    println!(
        "delivered: {} temperature / {} vibration messages",
        temperatures.stats().received,
        vibrations.stats().received
    );

    rt_line.shutdown();
    rt_analytics.shutdown();
    Ok(())
}
