//! Mixed-criticality timing isolation: a time-critical control flow and
//! a bulk flood sharing one 802.1Qbv time-aware shard, with guard
//! bands, per-message deadlines, and injected faults (DESIGN.md §14).
//!
//! The gate program gives TC7 the first 200 µs of every 1 ms cycle; a
//! 20 µs guard band keeps lower classes from starting a frame that
//! could still be in flight at the window edge, and per-frame
//! transmission metering keeps a burst from straddling a gate close.
//! The fabric's fault injector drops ~5% of frames underneath, so some
//! setpoints miss their deadline — the loop treats those as *lost* and
//! moves on, exactly like a real mixed-criticality consumer.
//!
//! ```bash
//! cargo run --example mixed_criticality
//! ```

use std::time::{Duration, Instant};

use insane::core::runtime::poll_until_quiescent;
use insane::core::Tunables;
use insane::fabric::FaultPlan;
use insane::{
    Acceleration, ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, ResourceUsage, Runtime,
    RuntimeConfig, SchedulerChoice, Technology, TestbedProfile, ThreadingMode, TimeSensitivity,
};

const BUDGET: Duration = Duration::from_millis(25);
const DEADLINE: Duration = Duration::from_millis(100);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::new(TestbedProfile::local());
    let plc = fabric.add_host("plc");
    let actuator = fabric.add_host("actuator");

    // The ISSUE's timing-isolation gate program: exclusive TC7 window,
    // guard band, and frame-transmission metering all configured up
    // front (both knobs also hot-reload via `tas_guard_band_ns` /
    // `tas_frame_tx_ns`).
    let tsn = SchedulerChoice::TimeAware {
        critical_window: Duration::from_micros(200),
        cycle: Duration::from_millis(1),
        guard_band: Duration::from_micros(20),
        frame_tx: Duration::from_micros(1),
    };
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&[Technology::KernelUdp, Technology::Dpdk])
            .with_scheduler(tsn)
            .with_threading(ThreadingMode::Manual)
    };
    let rt_plc = Runtime::start(config(1), &fabric, plc)?;
    let rt_act = Runtime::start(config(2), &fabric, actuator)?;
    rt_plc.add_peer(actuator)?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);

    let session_plc = insane::Session::connect(&rt_plc)?;
    let session_act = insane::Session::connect(&rt_act)?;

    let control_qos = QosPolicy {
        acceleration: Acceleration::Preferred,
        resource_usage: ResourceUsage::Unconstrained,
        time_sensitivity: TimeSensitivity::time_critical(),
    };
    let control_tx = session_plc.create_stream(control_qos)?;
    let control_rx = session_act.create_stream(control_qos)?;
    let bulk_tx = session_plc.create_stream(QosPolicy::fast())?;
    let bulk_rx = session_act.create_stream(QosPolicy::fast())?;

    let setpoint_sink = control_rx.create_sink(ChannelId(1))?;
    let bulk_sink = bulk_rx.create_sink(ChannelId(2))?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);
    let setpoints = control_tx.create_source(ChannelId(1))?;
    let diagnostics = bulk_tx.create_source(ChannelId(2))?;
    poll_until_quiescent(&[&rt_plc, &rt_act], 100_000);

    // Faults go live only after the control plane has settled.
    let faults = fabric.faults();
    faults.seed(7);
    faults.set_default_plan(FaultPlan {
        drop: 0.05,
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: 0.05,
    });

    println!(
        "control stream: {} + 802.1Qbv TC7, 20us guard band, {}ms budget",
        control_tx.technology(),
        BUDGET.as_millis(),
    );

    let mut delivered = 0u32;
    let mut lost = 0u32;
    for cycle in 0..20u64 {
        // Halfway through, widen the guard band live — the reload knob
        // the introspection endpoint exposes as `tas_guard_band_ns`.
        if cycle == 10 {
            rt_plc.reload_tunables(Tunables {
                tas_guard_band_ns: Some(100_000),
                ..Tunables::default()
            })?;
            println!("-- guard band widened to 100us via live reload --");
        }
        // The bulk flood queues first; the gates keep it off TC7's
        // window anyway.
        for _ in 0..8 {
            let mut noise = diagnostics.get_buffer(512)?;
            noise[..8].copy_from_slice(&cycle.to_le_bytes());
            diagnostics.emit(noise)?;
        }
        let mut sp = setpoints.get_buffer(8)?;
        sp.copy_from_slice(&cycle.to_le_bytes());
        let t0 = Instant::now();
        setpoints.emit(sp)?;

        // Deadline-enforced consume: stale deliveries (reordered or
        // duplicated frames) are discarded by sequence; a missed
        // deadline is a *lost* setpoint, not a stuck loop.
        let latency = loop {
            rt_plc.poll_once();
            rt_act.poll_once();
            match setpoint_sink.consume(ConsumeMode::NonBlocking) {
                Ok(msg) => {
                    let mut seq = [0u8; 8];
                    seq.copy_from_slice(&msg[..8]);
                    if u64::from_le_bytes(seq) == cycle {
                        break Some(t0.elapsed());
                    }
                }
                Err(InsaneError::WouldBlock) => {
                    if t0.elapsed() > DEADLINE {
                        break None;
                    }
                }
                Err(e) => return Err(e.into()),
            }
        };
        match latency {
            Some(d) => {
                delivered += 1;
                println!(
                    "cycle {cycle:>2}: setpoint in {:>8.2} us ({})",
                    d.as_nanos() as f64 / 1e3,
                    if d <= BUDGET {
                        "within budget"
                    } else {
                        "BUDGET MISSED"
                    },
                );
            }
            None => {
                lost += 1;
                println!("cycle {cycle:>2}: setpoint lost to the fault injector");
            }
        }
        while bulk_sink.consume(ConsumeMode::NonBlocking).is_ok() {}
    }

    let stats = fabric.faults().stats();
    println!(
        "{delivered} delivered / {lost} lost; gates deferred {} frames; \
         injector dropped {} and reordered {}",
        rt_plc.stats().gate_deferrals + rt_act.stats().gate_deferrals,
        stats.injected_drops,
        stats.reorders,
    );
    Ok(())
}
