//! Chaos tour: seeded fault injection and the self-healing control plane.
//!
//! Walks the fabric's fault injector through four scenarios — lossy
//! control plane, datapath failover + failback, peer expiry + recovery,
//! and a fully partitioned control link — printing the runtime's own
//! warnings and counters at each step.

use std::time::{Duration, Instant};

use insane::{
    ChannelId, ConsumeMode, ControlPlaneConfig, Fabric, InsaneError, QosPolicy, Runtime,
    RuntimeConfig, Source, Technology, TestbedProfile, ThreadingMode,
};

fn pump(rt_a: &Runtime, rt_b: &Runtime, source: &Source, sink: &insane::Sink) -> Option<Vec<u8>> {
    let until = Instant::now() + Duration::from_secs(10);
    while Instant::now() < until {
        for _ in 0..64 {
            rt_a.poll_once();
            rt_b.poll_once();
        }
        if let Ok(mut buf) = source.get_buffer(4) {
            buf.copy_from_slice(b"ping");
            match source.emit(buf) {
                Ok(_) | Err(InsaneError::Backpressure) => {}
                Err(e) => panic!("emit: {e}"),
            }
        }
        for _ in 0..64 {
            rt_a.poll_once();
            rt_b.poll_once();
        }
        if let Ok(msg) = sink.consume(ConsumeMode::NonBlocking) {
            return Some((*msg).to_vec());
        }
    }
    None
}

fn main() -> Result<(), InsaneError> {
    insane::set_warning_hook(|msg| println!("  [warn] {msg}"));
    let ctl = ControlPlaneConfig {
        retransmit_timeout: Duration::from_micros(200),
        max_attempts: 12,
        heartbeat_interval: Duration::from_millis(1),
        miss_threshold: 5,
    };

    // ── 1. Subscription exchange under 30% seeded control-plane loss ──
    println!("1. control plane under 30% seeded loss");
    let fabric = Fabric::new(TestbedProfile::local());
    let faults = fabric.faults();
    faults.seed(7);
    faults.set_default_plan(insane::fabric::FaultPlan::lossy(0.3));
    let a = fabric.add_host("edge-a");
    let b = fabric.add_host("edge-b");
    let techs = [Technology::KernelUdp, Technology::Dpdk];
    let config = |id| {
        RuntimeConfig::new(id)
            .with_technologies(&techs)
            .with_threading(ThreadingMode::Manual)
            .with_control(ctl)
    };
    let rt_a = Runtime::start(config(1), &fabric, a)?;
    let rt_b = Runtime::start(config(2), &fabric, b)?;
    rt_a.add_peer(b)?;

    let session_a = insane::Session::connect(&rt_a)?;
    let session_b = insane::Session::connect(&rt_b)?;
    let stream_a = session_a.create_stream(QosPolicy::fast())?;
    let stream_b = session_b.create_stream(QosPolicy::fast())?;
    let sink = stream_b.create_sink(ChannelId(1))?;
    let source = stream_a.create_source(ChannelId(1))?;
    assert_eq!(
        pump(&rt_a, &rt_b, &source, &sink).as_deref(),
        Some(&b"ping"[..])
    );
    println!(
        "  converged: {} retransmits, {} frames dropped by the injector\n",
        rt_a.stats().control_retransmits + rt_b.stats().control_retransmits,
        faults.stats().injected_drops,
    );
    faults.set_default_plan(insane::fabric::FaultPlan::none());

    // ── 2. Kill the DPDK device mid-stream: live failover to UDP ──
    println!("2. DPDK device failure mid-stream");
    let dpdk_ep = insane::fabric::Endpoint {
        host: a,
        port: 40_002,
    };
    faults.fail_device(dpdk_ep);
    assert_eq!(
        pump(&rt_a, &rt_b, &source, &sink).as_deref(),
        Some(&b"ping"[..])
    );
    println!(
        "  delivered over fallback: {} failover events, {} messages rerouted\n",
        rt_a.stats().failover_events,
        rt_a.stats().failover_messages,
    );

    // ── 3. Restore it: traffic migrates back ──
    println!("3. device recovery");
    faults.restore_device(dpdk_ep);
    assert_eq!(
        pump(&rt_a, &rt_b, &source, &sink).as_deref(),
        Some(&b"ping"[..])
    );
    println!("  failback events: {}\n", rt_a.stats().failback_events);

    // ── 4. Whole host dark → expiry; back → re-peer + re-announce ──
    println!("4. peer host goes dark, then returns");
    faults.set_host_down(b, true);
    let until = Instant::now() + Duration::from_secs(10);
    while rt_a.stats().peer_expiries == 0 && Instant::now() < until {
        rt_a.poll_once();
        rt_b.poll_once();
    }
    faults.set_host_down(b, false);
    assert_eq!(
        pump(&rt_a, &rt_b, &source, &sink).as_deref(),
        Some(&b"ping"[..])
    );
    println!(
        "  expiries: {}, recoveries: {}\n",
        rt_a.stats().peer_expiries,
        rt_a.stats().peers_recovered,
    );

    // ── 5. Fully partitioned control link: bounded abandonment ──
    println!("5. peering across a 100%-lossy link never hangs");
    let fabric2 = Fabric::new(TestbedProfile::local());
    let faults2 = fabric2.faults();
    let c = fabric2.add_host("edge-c");
    let d = fabric2.add_host("edge-d");
    faults2.set_link_down(c, d, true);
    faults2.set_link_down(d, c, true);
    let rt_c = Runtime::start(config(3), &fabric2, c)?;
    rt_c.add_peer(d)?;
    let until = Instant::now() + Duration::from_secs(10);
    while rt_c.stats().control_timeouts == 0 && Instant::now() < until {
        rt_c.poll_once();
    }
    println!(
        "  gave up cleanly: {} retransmits, {} abandoned announcements",
        rt_c.stats().control_retransmits,
        rt_c.stats().control_timeouts,
    );
    insane::clear_warning_hook();
    Ok(())
}
