//! Quickstart: the INSANE API end to end on one simulated edge node,
//! plus the QoS → technology mapping matrix across heterogeneous nodes.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use insane::core::qos::{DefaultMapping, MappingStrategy};
use insane::{
    ChannelId, ConsumeMode, Fabric, InsaneError, QosPolicy, Runtime, RuntimeConfig, Session,
    Technology, TestbedProfile,
};

fn main() -> Result<(), InsaneError> {
    // --- 1. One edge node, one runtime, one app talking to itself. ---
    let fabric = Fabric::new(TestbedProfile::local());
    let node = fabric.add_host("edge-node");
    let runtime = Runtime::start(RuntimeConfig::new(1), &fabric, node)?;

    let session = Session::connect(&runtime)?;
    let stream = session.create_stream(QosPolicy::fast())?;
    println!(
        "stream with QoS 'fast' mapped to: {} (fallback: {})",
        stream.technology(),
        stream.is_fallback()
    );

    let source = stream.create_source(ChannelId(7))?;
    let sink = stream.create_sink(ChannelId(7))?;

    let payload = b"hello from the edge";
    let mut buf = source.get_buffer(payload.len())?;
    buf.copy_from_slice(payload);
    let token = source.emit(buf)?;

    let msg = sink.consume(ConsumeMode::Blocking)?;
    println!(
        "received {:?} (channel {}, seq {}, outcome {:?})",
        String::from_utf8_lossy(&msg),
        msg.meta().channel,
        msg.meta().seq,
        source.emit_outcome(token),
    );
    drop(msg); // release_buffer

    // --- 2. The paper's headline: the same QoS, different nodes. ---
    println!("\nQoS mapping across heterogeneous edge nodes:");
    let node_kinds: [(&str, Vec<Technology>); 3] = [
        ("bare VM (kernel only)", vec![Technology::KernelUdp]),
        (
            "edge box (XDP + DPDK)",
            vec![Technology::KernelUdp, Technology::Xdp, Technology::Dpdk],
        ),
        (
            "rack server (RDMA NIC)",
            vec![
                Technology::KernelUdp,
                Technology::Xdp,
                Technology::Dpdk,
                Technology::Rdma,
            ],
        ),
    ];
    for (policy_name, policy) in [
        ("slow", QosPolicy::slow()),
        ("fast", QosPolicy::fast()),
        ("frugal", QosPolicy::frugal()),
    ] {
        for (node_name, available) in &node_kinds {
            let mapped = DefaultMapping.map(&policy, available);
            println!(
                "  {policy_name:6} on {node_name:24} -> {}{}",
                mapped.technology,
                if mapped.fallback { "  (fallback!)" } else { "" }
            );
        }
    }

    runtime.shutdown();
    Ok(())
}
