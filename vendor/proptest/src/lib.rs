//! Offline shim for `proptest` 1.x: deterministic property testing.
//!
//! Provides the `proptest!` macro family, `any::<T>()`, integer-range
//! strategies, `prop_map`, `prop_oneof!` and `collection::vec` over a
//! seeded xorshift generator.  Cases are derived deterministically from
//! the test name, so failures reproduce without a persistence file.
//! There is no shrinking: failing inputs are reported whole.

#![warn(missing_debug_implementations)]

/// Deterministic random source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Creates a generator from a numeric seed.
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod test_runner {
    //! Test configuration and failure types.

    use std::fmt;

    /// Subset of proptest's `Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; forked execution is not implemented.
        pub fork: bool,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The input was rejected (counts as skipped).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sample: Box::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Strategy producing a single fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<V> {
        sample: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sample)(rng)
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod arbitrary {
    //! Default strategies per type, reached through [`crate::any`].

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Produces one arbitrary value.
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn generate(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 1 {
                Some(T::generate(rng))
            } else {
                None
            }
        }
    }

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_fns!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    { @cfg($cfg:expr) } => {};
    { @cfg($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("property {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Skips the current case (without failing) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..=255).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..17, y in 1usize..=9, z in any::<u32>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn maps_and_unions_produce_values(o in crate::collection::vec(op(), 1..50)) {
            prop_assert!(!o.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_accepted(b in any::<bool>()) {
            let _ = b;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200, "x={}", x);
            }
        }
        inner();
    }
}
