//! Offline shim for `loom` 0.7: randomized-schedule model checking.
//!
//! The real loom performs exhaustive permutation exploration of every
//! atomic interleaving (CDSChecker-style DPOR).  This vendored stand-in
//! keeps the same API surface — `loom::model`, `loom::thread`,
//! `loom::sync::atomic`, `loom::cell::UnsafeCell` — so the workspace's
//! `cfg(loom)` test suites compile unchanged against upstream loom when a
//! network is available, while still finding real bugs offline:
//!
//! * [`model`] runs the closure many times (`LOOM_ITERS`, default 256),
//!   reseeding a deterministic xorshift scheduler each iteration.
//! * Every atomic operation and every [`cell::UnsafeCell`] access calls a
//!   perturbation hook that randomly yields or spins, driving the OS
//!   scheduler through different interleavings on every iteration.
//! * [`cell::UnsafeCell`] additionally *instruments* accesses: concurrent
//!   `with_mut` with any other access panics the model, turning silent
//!   data races on the zero-copy slots into hard test failures.
//!
//! What this shim cannot do is prove absence of races: it explores a
//! random sample of schedules, not the full partial order.  CI therefore
//! pairs it with Miri and ThreadSanitizer (see DESIGN.md §7).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Deterministic scheduler state shared by all perturbation points.
static SCHED_STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

/// Number of explored schedules when `LOOM_ITERS` is unset.
const DEFAULT_ITERS: u64 = 256;

pub(crate) mod rt {
    use super::{StdOrdering, SCHED_STATE};

    /// Reseeds the scheduler for iteration `iter` so runs are reproducible
    /// given the same `LOOM_ITERS` and test set.
    pub(crate) fn reseed(iter: u64) {
        SCHED_STATE.store(
            (iter.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1,
            StdOrdering::SeqCst,
        );
    }

    fn next() -> u64 {
        // Racy xorshift on purpose: contention adds entropy, and the value
        // only steers schedule perturbation.
        let mut x = SCHED_STATE.load(StdOrdering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        SCHED_STATE.store(x | 1, StdOrdering::Relaxed);
        x
    }

    /// Randomly disturbs the schedule at a synchronization point.
    pub(crate) fn perturb() {
        let r = next();
        if r.is_multiple_of(11) {
            std::thread::yield_now();
        } else if r.is_multiple_of(5) {
            for _ in 0..(r % 48) {
                core::hint::spin_loop();
            }
        }
    }
}

/// Runs `f` under the randomized-schedule explorer.
///
/// Mirrors `loom::model`: the closure must be self-contained (construct
/// its own state) because it is executed once per explored schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    for iter in 0..iters {
        rt::reseed(iter);
        f();
    }
}

pub mod thread {
    //! Thread spawning with scheduler perturbation, mirroring `loom::thread`.

    pub use std::thread::JoinHandle;

    /// Spawns a model thread; the spawn itself is a perturbation point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        crate::rt::perturb();
        std::thread::spawn(move || {
            crate::rt::perturb();
            f()
        })
    }

    /// Explicit scheduling point, mirroring `loom::thread::yield_now`.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod hint {
    //! Spin-loop hints, mirroring `loom::hint`.

    /// Scheduling-point spin hint.
    pub fn spin_loop() {
        crate::rt::perturb();
        core::hint::spin_loop();
    }
}

pub mod sync {
    //! Synchronization primitives, mirroring `loom::sync`.

    pub use std::sync::Arc;

    pub mod atomic {
        //! Instrumented atomics: every operation is a perturbation point.

        pub use std::sync::atomic::Ordering;

        /// Instrumented memory fence.
        pub fn fence(order: Ordering) {
            crate::rt::perturb();
            std::sync::atomic::fence(order);
        }

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Instrumented atomic delegating to the std type while
                /// perturbing the schedule around every access.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates a new atomic (not `const`, as in real loom).
                    pub fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Instrumented `load`.
                    pub fn load(&self, order: Ordering) -> $val {
                        crate::rt::perturb();
                        self.0.load(order)
                    }

                    /// Instrumented `store`.
                    pub fn store(&self, v: $val, order: Ordering) {
                        crate::rt::perturb();
                        self.0.store(v, order);
                        crate::rt::perturb();
                    }

                    /// Instrumented `swap`.
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        self.0.swap(v, order)
                    }

                    /// Instrumented `compare_exchange`.
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::rt::perturb();
                        let r = self.0.compare_exchange(current, new, success, failure);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `compare_exchange_weak` (may spuriously
                    /// fail, as the real operation is allowed to).
                    pub fn compare_exchange_weak(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::rt::perturb();
                        let r = self.0.compare_exchange_weak(current, new, success, failure);
                        crate::rt::perturb();
                        r
                    }

                    /// Unsynchronized access for single-threaded setup code,
                    /// mirroring loom's `with_mut`.
                    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut $val) -> R) -> R {
                        f(self.0.get_mut())
                    }
                }
            };
        }

        macro_rules! shim_atomic_int {
            ($name:ident, $std:ty, $val:ty) => {
                shim_atomic!($name, $std, $val);

                impl $name {
                    /// Instrumented `fetch_add`.
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_add(v, order);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `fetch_sub`.
                    pub fn fetch_sub(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_sub(v, order);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `fetch_max`.
                    pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_max(v, order);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `fetch_min`.
                    pub fn fetch_min(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_min(v, order);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `fetch_or`.
                    pub fn fetch_or(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_or(v, order);
                        crate::rt::perturb();
                        r
                    }

                    /// Instrumented `fetch_and`.
                    pub fn fetch_and(&self, v: $val, order: Ordering) -> $val {
                        crate::rt::perturb();
                        let r = self.0.fetch_and(v, order);
                        crate::rt::perturb();
                        r
                    }
                }
            };
        }

        shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        shim_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        shim_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Instrumented `AtomicPtr`, delegating to the std type while
        /// perturbing the schedule around every access (generic, so it
        /// cannot reuse the `shim_atomic!` macro).
        #[derive(Debug)]
        pub struct AtomicPtr<T>(pub(crate) std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            /// Creates a new atomic pointer (not `const`, as in real loom).
            pub fn new(p: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(p))
            }

            /// Instrumented `load`.
            pub fn load(&self, order: Ordering) -> *mut T {
                crate::rt::perturb();
                self.0.load(order)
            }

            /// Instrumented `store`.
            pub fn store(&self, p: *mut T, order: Ordering) {
                crate::rt::perturb();
                self.0.store(p, order);
                crate::rt::perturb();
            }

            /// Instrumented `swap`.
            pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
                crate::rt::perturb();
                let r = self.0.swap(p, order);
                crate::rt::perturb();
                r
            }

            /// Instrumented `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                crate::rt::perturb();
                let r = self.0.compare_exchange(current, new, success, failure);
                crate::rt::perturb();
                r
            }

            /// Unsynchronized access for single-threaded setup code,
            /// mirroring loom's `with_mut`.
            pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut *mut T) -> R) -> R {
                f(self.0.get_mut())
            }
        }

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                Self::new(std::ptr::null_mut())
            }
        }
    }
}

pub mod cell {
    //! Instrumented interior mutability, mirroring `loom::cell`.

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Marker bit distinguishing an exclusive writer from shared readers.
    const WRITER: usize = 1 << (usize::BITS - 1);

    /// An `UnsafeCell` whose accesses are checked at model-run time.
    ///
    /// `with` (shared) and `with_mut` (exclusive) track concurrent access
    /// with an atomic reader/writer count: any overlap involving a writer
    /// panics, converting a data race the protocol failed to prevent into
    /// a deterministic model failure.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T> {
        data: core::cell::UnsafeCell<T>,
        state: AtomicUsize,
    }

    impl<T> UnsafeCell<T> {
        /// Wraps `data` in an access-checked cell.
        pub fn new(data: T) -> Self {
            Self {
                data: core::cell::UnsafeCell::new(data),
                state: AtomicUsize::new(0),
            }
        }

        /// Shared (read) access to the cell's contents.
        ///
        /// # Panics
        ///
        /// Panics if an exclusive access is in progress on another thread.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            crate::rt::perturb();
            let prev = self.state.fetch_add(1, Ordering::Acquire);
            assert!(
                prev & WRITER == 0,
                "loom shim: read of UnsafeCell while a writer is active (data race)"
            );
            let r = f(self.data.get());
            self.state.fetch_sub(1, Ordering::Release);
            crate::rt::perturb();
            r
        }

        /// Exclusive (write) access to the cell's contents.
        ///
        /// # Panics
        ///
        /// Panics if any other access is in progress on another thread.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            crate::rt::perturb();
            let claimed =
                self.state
                    .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed);
            assert!(
                claimed.is_ok(),
                "loom shim: write to UnsafeCell while another access is active (data race)"
            );
            let r = f(self.data.get());
            self.state.store(0, Ordering::Release);
            crate::rt::perturb();
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_closure_many_times() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(count.load(Ordering::SeqCst) > 1);
    }

    #[test]
    fn cell_allows_handoff_and_shared_reads() {
        let cell = super::cell::UnsafeCell::new(7u32);
        // SAFETY: single-threaded test — no concurrent access exists.
        cell.with_mut(|p| unsafe { *p = 9 });
        let a = cell.with(|p| unsafe { *p });
        assert_eq!(a, 9);
    }

    #[test]
    fn atomics_behave_like_std() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert_eq!(
            a.compare_exchange(3, 5, Ordering::SeqCst, Ordering::SeqCst),
            Ok(3)
        );
        assert_eq!(a.swap(8, Ordering::SeqCst), 5);
    }

    #[test]
    fn threads_join_with_results() {
        let h = super::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    }
}
