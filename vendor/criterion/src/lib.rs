//! Offline shim for `criterion` 0.5: a minimal wall-clock benchmark
//! harness exposing the macro/group/bencher surface this workspace uses.
//!
//! Measurements are a short warmup followed by a fixed batch of timed
//! iterations; mean time per iteration is printed to stdout. There is no
//! statistical analysis, HTML report, or comparison baseline.

#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 100;
const MEASURE_ITERS: u64 = 2_000;

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / mean_ns)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(
                    " ({:.1} MiB/s)",
                    n as f64 * 1e9 / mean_ns / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{}/{}: {:.1} ns/iter{}", self.name, name, mean_ns, rate);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark registry entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
