//! Offline shim for `parking_lot` 0.12: non-poisoning `Mutex`, `RwLock`
//! and `Condvar` built on `std::sync`.
//!
//! Only the surface this workspace uses is provided.  Poisoning is
//! neutralized by recovering the inner guard, which matches
//! `parking_lot`'s semantics (a panicking holder does not poison the
//! lock for everyone else).

#![warn(missing_debug_implementations)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline(always)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline(always)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline(always)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    #[inline(always)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Outcome of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// As [`Condvar::wait`] with a timeout duration.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// As [`Condvar::wait`] with an absolute deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    #[inline(always)]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline(always)]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout_reports() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(3));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 3, "shim must not poison");
    }
}
